// Unit tests for the discrete-event kernel: ordering, cancellation,
// determinism, and RNG stream independence.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::sim {
namespace {

// Run every remaining live event to completion through the pooled-pop API.
void drain(EventQueue& queue) {
  Time time = kTimeZero;
  InlineTask action;
  while (queue.pop(time, action)) action();
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(3.0, [&] { order.push_back(3); });
  queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    queue.push(5.0, [&order, i] { order.push_back(i); });
  }
  drain(queue);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue queue;
  int fired = 0;
  EventHandle keep = queue.push(1.0, [&] { ++fired; });
  EventHandle gone = queue.push(2.0, [&] { ++fired; });
  gone.cancel();
  EXPECT_TRUE(keep.pending());
  EXPECT_FALSE(gone.pending());
  drain(queue);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue queue;
  EventHandle handle = queue.push(1.0, [] {});
  Time time = kTimeZero;
  InlineTask action;
  ASSERT_TRUE(queue.pop(time, action));
  action();
  handle.cancel();  // already fired: must not blow up
  handle.cancel();
  drain(queue);  // recycles the executing slot
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, HandleStaysPendingWhileItsEventRuns) {
  // Protocol timers test `pending()` inside their own callback (e.g. the
  // sleep-check timer) and rely on it reporting true until the event has
  // fully retired.
  EventQueue queue;
  EventHandle handle;
  bool sawPending = false;
  handle = queue.push(1.0, [&] { sawPending = handle.pending(); });
  Time time = kTimeZero;
  InlineTask action;
  ASSERT_TRUE(queue.pop(time, action));
  action();
  EXPECT_TRUE(sawPending);
  EXPECT_FALSE(queue.pop(time, action));
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, StaleHandleDoesNotAliasRecycledSlot) {
  EventQueue queue;
  EventHandle old = queue.push(1.0, [] {});
  drain(queue);  // the final (empty) pop retires the executing slot
  // The next push reuses the pooled slot; the stale handle must not see it.
  int fired = 0;
  EventHandle fresh = queue.push(2.0, [&] { ++fired; });
  EXPECT_FALSE(old.pending());
  old.cancel();  // must not cancel the new occupant
  EXPECT_TRUE(fresh.pending());
  drain(queue);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, PeekTimeSkipsCancelled) {
  EventQueue queue;
  EventHandle first = queue.push(1.0, [] {});
  queue.push(4.0, [] {});
  first.cancel();
  EXPECT_DOUBLE_EQ(queue.peekTime(), 4.0);
}

TEST(EventQueue, EmptyQueueReportsNever) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_GE(queue.peekTime(), kTimeNever);
  Time time = kTimeZero;
  InlineTask action;
  EXPECT_FALSE(queue.pop(time, action));
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator simulator;
  std::vector<Time> seen;
  simulator.schedule(1.5, [&] { seen.push_back(simulator.now()); });
  simulator.schedule(0.5, [&] { seen.push_back(simulator.now()); });
  simulator.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 0.5);
  EXPECT_DOUBLE_EQ(seen[1], 1.5);
}

TEST(Simulator, RunUntilHorizonExecutesBoundaryEvent) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(10.0, [&] { ++fired; });
  simulator.schedule(10.000001, [&] { ++fired; });
  simulator.run(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(simulator.now(), 10.0);
}

TEST(Simulator, ClockReachesHorizonEvenWhenQueueDrains) {
  Simulator simulator;
  simulator.schedule(1.0, [] {});
  simulator.run(50.0);
  EXPECT_DOUBLE_EQ(simulator.now(), 50.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) simulator.schedule(1.0, recurse);
  };
  simulator.schedule(1.0, recurse);
  simulator.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(simulator.now(), 5.0);
}

TEST(Simulator, RequestStopHaltsRun) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(1.0, [&] {
    ++fired;
    simulator.requestStop();
  });
  simulator.schedule(2.0, [&] { ++fired; });
  simulator.run();
  EXPECT_EQ(fired, 1);
  // A fresh run resumes where we stopped.
  simulator.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator simulator;
  simulator.schedule(5.0, [] {});
  simulator.run();
  EXPECT_THROW(simulator.scheduleAt(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(simulator.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, EventCountIsTracked) {
  Simulator simulator;
  for (int i = 0; i < 7; ++i) simulator.schedule(i * 0.1, [] {});
  simulator.run();
  EXPECT_EQ(simulator.eventsExecuted(), 7u);
}

// --- RNG ------------------------------------------------------------------

TEST(Rng, SameSeedSameNameReproduces) {
  RngFactory a(123);
  RngFactory b(123);
  RngStream sa = a.stream("mac", 4);
  RngStream sb = b.stream("mac", 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sa.uniform(0, 1), sb.uniform(0, 1));
  }
}

TEST(Rng, DifferentNamesDecorrelate) {
  RngFactory factory(123);
  RngStream a = factory.stream("alpha");
  RngStream b = factory.stream("beta");
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.raw() == b.raw()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, DifferentSeedsDecorrelate) {
  RngFactory a(1);
  RngFactory b(2);
  EXPECT_NE(a.stream("x").raw(), b.stream("x").raw());
}

TEST(Rng, UniformRespectsBounds) {
  RngFactory factory(9);
  RngStream stream = factory.stream("u");
  for (int i = 0; i < 1000; ++i) {
    double v = stream.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntIsInclusive) {
  RngFactory factory(9);
  RngStream stream = factory.stream("i");
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = stream.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo |= v == 0;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  RngFactory factory(77);
  RngStream stream = factory.stream("e");
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += stream.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, InvalidArgumentsThrow) {
  RngFactory factory(1);
  RngStream stream = factory.stream("t");
  // void-cast: the draws are [[nodiscard]] and these calls exist to throw.
  EXPECT_THROW(static_cast<void>(stream.uniform(2.0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(stream.exponential(0.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(stream.chance(1.5)), std::invalid_argument);
}

// Property sweep: for many (seed, horizon) pairs, executing a batch of
// randomly-timed events is deterministic and time-monotone.
class SimDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimDeterminism, ReplayIsIdentical) {
  auto runOnce = [&](std::uint64_t seed) {
    Simulator simulator(seed);
    RngStream rng = simulator.rng().stream("times");
    std::vector<double> trace;
    for (int i = 0; i < 200; ++i) {
      simulator.schedule(rng.uniform(0.0, 100.0),
                         [&] { trace.push_back(simulator.now()); });
    }
    simulator.run();
    return trace;
  };
  std::vector<double> first = runOnce(GetParam());
  std::vector<double> second = runOnce(GetParam());
  ASSERT_EQ(first, second);
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1], first[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminism,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace ecgrid::sim
