// ecgrid-lint-fixture-path: src/mac/promiscuous_mac.cpp
// ecgrid-lint-fixture: expect-violation(include-layering)
// A MAC reaching up the layer DAG: net/ aggregates (Node/Network) and
// the harness sit above mac, so these edges would weld the MAC to
// whole-network state a shard boundary must be able to cut.
#include "harness/scenario.hpp"
#include "net/network.hpp"

// Legal edges for contrast — the net *interface* headers and layers at
// or below mac do not fire:
#include "net/link_layer.hpp"
#include "net/packet.hpp"
#include "phy/radio.hpp"
#include "util/log.hpp"
