// ecgrid-lint-fixture-path: src/protocols/common/neighbor_peek_ok.cpp
// ecgrid-lint-fixture: expect-clean
// The same remote-host reaches as cross_host_access_fires.cpp, each with
// a justified suppression — the shape a reviewed exception takes (e.g. a
// debug-only audit helper that inspects remote state read-only and never
// ships in a sharded build).
namespace ecgrid::protocols {

struct NeighborPeekAudit {
  void peek() {
    // Read-only diagnostic, compiled out of sharded builds.
    // ecgrid-lint: allow(cross-host-access)
    auto* remote = network_.findNode(7);
    (void)remote;
    auto* env = remoteEnv();  // ecgrid-lint: allow(cross-host-access)
    (void)env;
  }

  // ecgrid-lint: allow(cross-host-access)
  net::HostEnv* remoteEnv();
};

}  // namespace ecgrid::protocols
