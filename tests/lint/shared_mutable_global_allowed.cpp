// ecgrid-lint-fixture-path: src/util/registry_example.cpp
// ecgrid-lint-fixture: expect-clean
// The sanctioned shapes: a thread-safe process-wide registry behind a
// justified allow() (util/log's Logger is the real instance), const and
// constexpr statics, thread_local per-worker slots, and static member
// functions — none of which the rule should flag.
#include <atomic>

namespace ecgrid::util {

struct Registry {
  std::atomic<int> level{0};
};

Registry& registryStorage() {
  // Process-wide by design; all state inside is atomic.
  static Registry storage;  // ecgrid-lint: allow(shared-mutable-global)
  return storage;
}

static constexpr int kMaxTags = 32;
static const double kEpsilon = 1e-9;

const double*& clockSlot() {
  thread_local const double* clock = nullptr;
  return clock;
}

class Helper {
  static int parse(const char* text);
};

}  // namespace ecgrid::util
