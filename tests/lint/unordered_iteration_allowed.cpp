// ecgrid-lint-fixture: expect-clean
// Same shape as unordered_iteration_fires.cpp but the iteration's effect
// is provably order-independent (a sum), so the author suppressed it.
#include <unordered_map>

struct Sim {
  template <typename F>
  void schedule(double delay, F&& handler);
};

void flood(Sim& sim) {
  std::unordered_map<int, double> neighbours;
  double total = 0.0;
  // Commutative fold; order cannot leak into the schedule below.
  // ecgrid-lint: allow(unordered-iteration)
  for (const auto& [id, delay] : neighbours) {
    total += delay;
  }
  sim.schedule(total, [] {});
}
