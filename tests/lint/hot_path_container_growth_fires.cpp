// ecgrid-lint-fixture: expect-violation(hot-path-container-growth)
//
// push_back in a hot region with no reserve() of the receiver anywhere
// in the file: steady-state reallocation waiting to happen.
#include <vector>

#define ECGRID_HOT_PATH

struct Queue {
  std::vector<int> items;

  ECGRID_HOT_PATH void enqueue(int value) {
    items.push_back(value);
  }
};
