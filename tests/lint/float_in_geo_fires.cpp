// ecgrid-lint-fixture: expect-violation(float-in-geo-energy)
// ecgrid-lint-fixture-path: src/geo/fixture_example.hpp
// Single-precision in the geometry layer truncates grid arithmetic and
// makes digests platform-dependent; the rule must fire when a file
// lives under src/geo (impersonated here via the fixture-path
// directive).

struct Vec2f {
  float x = 0.0f;
  float y = 0.0f;
};

inline float manhattan(const Vec2f& v) { return v.x + v.y; }
