// ecgrid-lint-fixture-path: src/sim/event_census.cpp
// ecgrid-lint-fixture: expect-violation(shared-mutable-global)
// Mutable statics in src/: a namespace-scope counter, a function-local
// cache, and a static class data member. All three are state one
// scenario's run can leak into another's (and a data race once scenarios
// run in parallel).
namespace ecgrid::sim {

static int eventsDispatchedEver = 0;

int nextCensusId() {
  static int lastId{0};
  return ++lastId;
}

class EventCensus {
  static double lastDispatchTime_;
};

}  // namespace ecgrid::sim
