// ecgrid-lint-fixture-path: src/phy/channel.cpp
// ecgrid-lint-fixture: expect-clean
//
// The sanctioned shapes in shared-medium code: host-directed deliveries
// through scheduleFor (the mailbox API), and a hub-owned self-timer
// carrying a justified allow().

using uint64 = unsigned long long;

inline constexpr uint64 hostEventKey(int hostId) {
  return static_cast<uint64>(hostId);
}

struct Radio {
  int id() const { return 7; }
};

struct Simulator {
  template <class F>
  void schedule(double delay, F&& action, const char* label) {}
  template <class F>
  void scheduleFor(uint64 ownerKey, double delay, F&& action,
                   const char* label) {}
};

struct Channel {
  void deliverTo(Radio* receiver, double delay) {
    // Boundary event: routed to the receiving host's shard.
    sim_.scheduleFor(hostEventKey(receiver->id()), delay,
                     [receiver] { (void)receiver; }, "phy/deliver");
  }
  void armSelfTimer() {
    // Channel-owned housekeeping: executes in the hub/sender context by
    // design, touches no per-host state.
    // ecgrid-lint: allow(shard-mailbox-bypass)
    sim_.schedule(1.0, [] {}, "phy/housekeeping");
  }
  Simulator sim_;
};
