// ecgrid-lint-fixture: expect-clean
//
// The same push_back is clean once the receiver is visibly reserve()d
// in this file — growth then only happens up to the pre-sized
// high-water mark.
#include <vector>

#define ECGRID_HOT_PATH

struct Queue {
  std::vector<int> items;

  Queue() { items.reserve(256); }

  ECGRID_HOT_PATH void enqueue(int value) {
    items.push_back(value);
  }
};
