// ecgrid-lint-fixture: expect-clean
//
// The same allocation with a justified allow() stays clean, and
// placement new never fires at all — it constructs into storage that
// someone else allocated.
#include <memory>
#include <new>

#define ECGRID_HOT_PATH

struct Header {
  int bytes = 0;
};

struct Dispatcher {
  std::shared_ptr<Header> last;
  alignas(Header) unsigned char storage[sizeof(Header)];

  ECGRID_HOT_PATH void onFrame(int size) {
    // The header is the wire object: one allocation per frame by design.
    last = std::make_shared<Header>();  // ecgrid-lint: allow(hot-path-allocation)
    last->bytes = size;
    Header* inPlace = new (storage) Header{};
    inPlace->bytes = size;
  }

  void coldPath() {
    // Not annotated: allocation here is nobody's business.
    last = std::make_shared<Header>();
  }
};
