// ecgrid-lint-fixture-path: src/traffic/workload/ambient_generator.cpp
// ecgrid-lint-fixture: expect-violation(banned-random)
// An "ambient random" workload generator — rolling its own mt19937
// instead of drawing from the named traffic/* streams — would make
// session arrivals unreproducible and break the byte-identical-replay
// gate, so the sweep rejects it.
#include <random>

struct AmbientWorkloadGenerator {
  std::mt19937 engine{12345};

  double nextInterArrival(double rate) {
    std::exponential_distribution<double> gap(rate);
    return gap(engine);
  }
};
