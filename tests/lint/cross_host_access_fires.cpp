// ecgrid-lint-fixture-path: src/protocols/common/neighbor_peek.cpp
// ecgrid-lint-fixture: expect-violation(cross-host-access)
// Per-host protocol code holding a remote-host handle and dereferencing
// the network directly: both pin two hosts into one shard. (Fixture is
// lint input only, never compiled.)
namespace ecgrid::protocols {

struct NeighborPeek {
  // A stored pointer to a host environment is a stashed *remote* host —
  // the own environment is held by reference.
  void* stash;

  void peek() {
    auto* remote = network_.findNode(7);
    remote->battery().drain(1.0);
  }
};

}  // namespace ecgrid::protocols
