// ecgrid-lint-fixture: expect-violation(unknown-allow)
//
// An allow() naming a rule this tool does not know suppresses nothing
// — before PR 9 it was silently ignored; now it fails the sweep with a
// locus so the typo gets fixed.
int answer() {
  return 42;  // ecgrid-lint: allow(hot-path-alocation)
}
