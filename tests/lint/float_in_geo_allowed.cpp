// ecgrid-lint-fixture: expect-clean
// Two ways float is acceptable: (1) a justified suppression inside the
// scoped tree, (2) the same code outside src/geo|src/energy (this file's
// real path) is out of scope — exercised by the companion fixture
// float_outside_scope.cpp. Here we prove the suppression works.
// ecgrid-lint-fixture-path: src/energy/fixture_example.hpp

struct PackedSample {
  // Wire-format struct mirrors external hardware; precision is bounded
  // by the sensor, not by us.
  // ecgrid-lint: allow(float-in-geo-energy)
  float raw = 0.0f;  // ecgrid-lint: allow(float-in-geo-energy)
};
