// ecgrid-lint-fixture-path: src/traffic/workload/census_ok.cpp
// ecgrid-lint-fixture: expect-clean
// The workload layer's dedicated streams are census entries, so drawing
// from them under src/ passes.

struct RngFactory {
  int stream(const char* name, int salt = 0);
};

int workloadStreams(RngFactory& factory) {
  int a = factory.stream("traffic/arrivals");
  int b = factory.stream("traffic/clients");
  int c = factory.stream("traffic/sizes");
  int d = factory.stream("campaign/subsample", 3);
  return a + b + c + d;
}
