// ecgrid-lint-fixture-path: src/sim/task.hpp
// ecgrid-lint-fixture: expect-violation(layout-budget)
//
// A census'd hot struct (InlineTask lives in src/sim/task.hpp) defined
// without its ECGRID_LAYOUT_BUDGET must fire.
struct InlineTask {
  void* storage;
};
