// ecgrid-lint-fixture: expect-violation(hot-path-allocation)
//
// BEGIN/END region markers scope the rules without a function
// annotation: the allocation between them fires, the identical one
// after END does not (the self-test's stray-finding check pins that
// down, since a second finding would be reported as unexpected).
#include <memory>

#define ECGRID_HOT_PATH_BEGIN
#define ECGRID_HOT_PATH_END

struct Header {
  int bytes = 0;
};

std::shared_ptr<Header> hotSpan() {
  ECGRID_HOT_PATH_BEGIN
  auto header = std::make_shared<Header>();
  ECGRID_HOT_PATH_END
  return header;
}

std::shared_ptr<Header> coldSpan() {
  return std::make_shared<Header>();
}
