// ecgrid-lint-fixture-path: src/sim/task.hpp
// ecgrid-lint-fixture: expect-clean
//
// The budget macro next to the definition satisfies the census.
struct InlineTask {
  void* storage;
};
ECGRID_LAYOUT_BUDGET(InlineTask, 128);
