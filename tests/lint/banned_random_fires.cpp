// ecgrid-lint-fixture: expect-violation(banned-random)
// Raw engine construction and ambient clocks outside src/sim/rng.* must
// be flagged: they bypass the named-stream discipline.
#include <chrono>
#include <ctime>
#include <random>

int ad_hoc_randomness() {
  std::mt19937 engine(std::random_device{}());
  auto wall = std::chrono::system_clock::now().time_since_epoch().count();
  auto unix_time = time(nullptr);
  return static_cast<int>(engine() + wall + unix_time);
}
