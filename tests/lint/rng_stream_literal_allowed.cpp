// ecgrid-lint-fixture: expect-clean
// Literal stream names pass; a justified suppression covers the one
// dynamic name (test helper fuzzing the factory itself).
#include <string>

struct RngFactory {
  int stream(const std::string& name, int salt = 0);
};

int wellBehaved(RngFactory& factory, const std::string& fuzzName) {
  int a = factory.stream("mac/backoff", 3);
  int b = factory.stream("check/tiebreak");
  // Fuzzing the factory's name hashing requires arbitrary names.
  // ecgrid-lint: allow(rng-stream-literal)
  int c = factory.stream(fuzzName);
  return a + b + c;
}
