// ecgrid-lint-fixture-path: src/traffic/workload/typo_generator.cpp
// ecgrid-lint-fixture: expect-violation(rng-stream-literal)
// A literal stream name under src/ that is missing from the census
// table: a typo ("trafic", "traffic/arivals") would silently fork a
// fresh stream and decouple the run from every committed digest, so the
// sweep fails until STREAM_NAME_CENSUS and the code agree.

struct RngFactory {
  int stream(const char* name, int salt = 0);
};

int typoedWorkloadStream(RngFactory& factory) {
  return factory.stream("trafic/arrivals");
}
