// ecgrid-lint-fixture-path: src/mac/promiscuous_mac_ok.cpp
// ecgrid-lint-fixture: expect-clean
// The same illegal edges as include_layering_fires.cpp carrying a
// justified suppression — the shape a reviewed, temporary layering
// exception takes while a refactor is staged over two PRs.
// Migration to LinkLayer-only access tracked in the next PR.
#include "net/network.hpp"  // ecgrid-lint: allow(include-layering)

// ecgrid-lint: allow(include-layering)
#include "harness/scenario.hpp"

#include "net/packet.hpp"
#include "phy/radio.hpp"
