// ecgrid-lint-fixture: expect-violation(rng-stream-literal)
// Stream names built at runtime defeat the greppable stream census:
// `grep -r 'stream("'` must enumerate every stream in the codebase.
#include <string>

struct RngFactory {
  int stream(const std::string& name, int salt = 0);
};

int shuffled(RngFactory& factory, const std::string& protocol) {
  std::string name = protocol + "/tiebreak";
  return factory.stream(name, 7);
}
