// ecgrid-lint-fixture: expect-clean
// The same constructs as banned_random_fires.cpp, each carrying a
// justified suppression — the allow() escape hatch must silence every
// banned-random pattern, same-line or line-above.
#include <chrono>
#include <ctime>
#include <random>

int ad_hoc_randomness() {
  // ecgrid-lint: allow(banned-random)
  std::mt19937 engine(std::random_device{}());
  auto wall = std::chrono::system_clock::now().count();  // ecgrid-lint: allow(banned-random)
  auto unix_time = time(nullptr);  // ecgrid-lint: allow(banned-random)
  return static_cast<int>(engine() + wall + unix_time);
}
