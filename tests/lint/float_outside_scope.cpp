// ecgrid-lint-fixture: expect-clean
// float is only banned under src/geo and src/energy; this fixture keeps
// its real tests/lint/ path, so the rule must NOT fire.

struct RenderVertex {
  float u = 0.0f;
  float v = 0.0f;
};
