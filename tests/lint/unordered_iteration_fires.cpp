// ecgrid-lint-fixture: expect-violation(unordered-iteration)
// A file that schedules events AND range-fors over an unordered
// container: hash order would leak into event order.
#include <unordered_map>

struct Sim {
  template <typename F>
  void schedule(double delay, F&& handler);
};

void flood(Sim& sim) {
  std::unordered_map<int, double> neighbours;
  for (const auto& [id, delay] : neighbours) {
    sim.schedule(delay, [] {});
  }
}
