// ecgrid-lint-fixture: expect-violation(hot-path-allocation)
//
// make_shared inside an ECGRID_HOT_PATH-annotated function body must
// fire: steady-state event dispatch may not touch the allocator.
#include <memory>

#define ECGRID_HOT_PATH

struct Header {
  int bytes = 0;
};

struct Dispatcher {
  std::shared_ptr<Header> last;

  ECGRID_HOT_PATH void onFrame(int size) {
    last = std::make_shared<Header>();
    last->bytes = size;
  }
};
