// ecgrid-lint-fixture-path: src/phy/channel.cpp
// ecgrid-lint-fixture: expect-violation(shard-mailbox-bypass)
//
// A shared-medium delivery scheduled with plain schedule(): the event
// lands on whatever shard the *sender* is executing on, bypassing the
// receiving host's edge mailbox. The channel must use
// scheduleFor(hostEventKey(receiver->id()), ...) instead.

struct Radio {
  int id() const { return 7; }
};

struct Simulator {
  template <class F>
  void schedule(double delay, F&& action, const char* label) {}
};

struct Channel {
  void deliverTo(Radio* receiver, double delay) {
    sim_.schedule(delay, [receiver] { (void)receiver; }, "phy/deliver");
  }
  Simulator sim_;
};
