// Unit tests for the leveled logger (src/util/log).
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.hpp"

namespace ecgrid::util {
namespace {

// The level and overrides are process-global; every test restores the
// silent default so the rest of the suite stays quiet.
class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Logger::configure("");  // clears per-component overrides
    Logger::setLevel(LogLevel::kOff);
  }
};

TEST_F(LogTest, ParseLevelAcceptsNamesAndDigits) {
  EXPECT_EQ(Logger::parseLevel("error"), LogLevel::kError);
  EXPECT_EQ(Logger::parseLevel("1"), LogLevel::kError);
  EXPECT_EQ(Logger::parseLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(Logger::parseLevel("2"), LogLevel::kWarn);
  EXPECT_EQ(Logger::parseLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(Logger::parseLevel("3"), LogLevel::kInfo);
  EXPECT_EQ(Logger::parseLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(Logger::parseLevel("4"), LogLevel::kDebug);
  EXPECT_EQ(Logger::parseLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(Logger::parseLevel("5"), LogLevel::kTrace);
}

TEST_F(LogTest, ParseLevelMapsUnknownToOff) {
  EXPECT_EQ(Logger::parseLevel(""), LogLevel::kOff);
  EXPECT_EQ(Logger::parseLevel("verbose"), LogLevel::kOff);
  EXPECT_EQ(Logger::parseLevel("ERROR"), LogLevel::kOff);  // case-sensitive
  EXPECT_EQ(Logger::parseLevel("0"), LogLevel::kOff);
}

TEST_F(LogTest, SetLevelRoundTripsAndGatesEnabled) {
  Logger::setLevel(LogLevel::kWarn);
  EXPECT_EQ(Logger::level(), LogLevel::kWarn);
  EXPECT_TRUE(logEnabled(LogLevel::kError));
  EXPECT_TRUE(logEnabled(LogLevel::kWarn));
  EXPECT_FALSE(logEnabled(LogLevel::kInfo));
  EXPECT_FALSE(logEnabled(LogLevel::kTrace));

  Logger::setLevel(LogLevel::kOff);
  EXPECT_FALSE(logEnabled(LogLevel::kError));
}

TEST_F(LogTest, WriteFormatsLevelTagAndMessage) {
  ::testing::internal::CaptureStderr();
  Logger::write(LogLevel::kError, "mac", "backoff exhausted");
  Logger::write(LogLevel::kWarn, "phy", "w");
  Logger::write(LogLevel::kInfo, "grid", "i");
  Logger::write(LogLevel::kDebug, "gaf", "d");
  Logger::write(LogLevel::kTrace, "sim", "t");
  Logger::write(LogLevel::kOff, "none", "o");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[error] [mac] backoff exhausted\n"), std::string::npos);
  EXPECT_NE(out.find("[warn] [phy] w\n"), std::string::npos);
  EXPECT_NE(out.find("[info] [grid] i\n"), std::string::npos);
  EXPECT_NE(out.find("[debug] [gaf] d\n"), std::string::npos);
  EXPECT_NE(out.find("[trace] [sim] t\n"), std::string::npos);
  EXPECT_NE(out.find("[off] [none] o\n"), std::string::npos);
}

TEST_F(LogTest, MacroSkipsMessageConstructionWhenDisabled) {
  Logger::setLevel(LogLevel::kWarn);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "built";
  };
  ::testing::internal::CaptureStderr();
  ECGRID_LOG_DEBUG("test", count());  // below the level: expr must not run
  ECGRID_LOG_WARN("test", count());   // at the level: expr runs, line emitted
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(out.find("[warn] [test] built"), std::string::npos);
  EXPECT_EQ(out.find("[debug]"), std::string::npos);
}

TEST_F(LogTest, MacroStreamsMixedExpressions) {
  Logger::setLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  ECGRID_LOG_INFO("node/7", "seq=" << 42 << " at " << 1.5 << "s");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[info] [node/7] seq=42 at 1.5s"), std::string::npos);
}

TEST_F(LogTest, ConfigureAppliesGlobalAndPerComponentLevels) {
  Logger::configure("info,mac=debug,route=trace");
  EXPECT_EQ(Logger::level(), LogLevel::kInfo);
  EXPECT_TRUE(Logger::hasOverrides());
  EXPECT_EQ(Logger::levelFor("mac"), LogLevel::kDebug);
  EXPECT_EQ(Logger::levelFor("route"), LogLevel::kTrace);
  EXPECT_EQ(Logger::levelFor("phy"), LogLevel::kInfo);  // no override
  EXPECT_TRUE(logEnabled(LogLevel::kDebug, "mac"));
  EXPECT_FALSE(logEnabled(LogLevel::kDebug, "phy"));
  EXPECT_TRUE(logEnabled(LogLevel::kInfo, "phy"));
}

TEST_F(LogTest, ReconfigureClearsPreviousOverrides) {
  Logger::configure("info,mac=debug");
  ASSERT_TRUE(Logger::hasOverrides());
  Logger::configure("warn");
  EXPECT_EQ(Logger::level(), LogLevel::kWarn);
  EXPECT_FALSE(Logger::hasOverrides());
  EXPECT_EQ(Logger::levelFor("mac"), LogLevel::kWarn);
}

TEST_F(LogTest, BareOverrideSpecKeepsGlobalLevel) {
  Logger::setLevel(LogLevel::kError);
  Logger::configure("mac=debug");
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  EXPECT_EQ(Logger::levelFor("mac"), LogLevel::kDebug);
}

TEST_F(LogTest, PrefixesSimTimeWhileASimulatorIsAlive) {
  Logger::setLevel(LogLevel::kInfo);
  sim::Simulator simulator(1);
  simulator.schedule(1.5, [] {
    ECGRID_LOG_INFO("test", "mid-run line");
  });
  ::testing::internal::CaptureStderr();
  simulator.run();
  ECGRID_LOG_INFO("test", "post-run line");  // simulator still alive
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[t=1.500000] [info] [test] mid-run line"),
            std::string::npos);
}

TEST_F(LogTest, OmitsSimTimePrefixWithoutASimulator) {
  Logger::setLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  ECGRID_LOG_INFO("test", "bare line");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[info] [test] bare line"), std::string::npos);
  EXPECT_EQ(out.find("[t="), std::string::npos);
}

}  // namespace
}  // namespace ecgrid::util
