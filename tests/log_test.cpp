// Unit tests for the leveled logger (src/util/log).
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "harness/parallel_runner.hpp"
#include "harness/scenario.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::util {
namespace {

// The level and overrides are process-global; every test restores the
// silent default so the rest of the suite stays quiet.
class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Logger::configure("");  // clears per-component overrides
    Logger::setLevel(LogLevel::kOff);
  }
};

TEST_F(LogTest, ParseLevelAcceptsNamesAndDigits) {
  EXPECT_EQ(Logger::parseLevel("error"), LogLevel::kError);
  EXPECT_EQ(Logger::parseLevel("1"), LogLevel::kError);
  EXPECT_EQ(Logger::parseLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(Logger::parseLevel("2"), LogLevel::kWarn);
  EXPECT_EQ(Logger::parseLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(Logger::parseLevel("3"), LogLevel::kInfo);
  EXPECT_EQ(Logger::parseLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(Logger::parseLevel("4"), LogLevel::kDebug);
  EXPECT_EQ(Logger::parseLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(Logger::parseLevel("5"), LogLevel::kTrace);
}

TEST_F(LogTest, ParseLevelMapsUnknownToOff) {
  EXPECT_EQ(Logger::parseLevel(""), LogLevel::kOff);
  EXPECT_EQ(Logger::parseLevel("verbose"), LogLevel::kOff);
  EXPECT_EQ(Logger::parseLevel("ERROR"), LogLevel::kOff);  // case-sensitive
  EXPECT_EQ(Logger::parseLevel("0"), LogLevel::kOff);
}

TEST_F(LogTest, SetLevelRoundTripsAndGatesEnabled) {
  Logger::setLevel(LogLevel::kWarn);
  EXPECT_EQ(Logger::level(), LogLevel::kWarn);
  EXPECT_TRUE(logEnabled(LogLevel::kError));
  EXPECT_TRUE(logEnabled(LogLevel::kWarn));
  EXPECT_FALSE(logEnabled(LogLevel::kInfo));
  EXPECT_FALSE(logEnabled(LogLevel::kTrace));

  Logger::setLevel(LogLevel::kOff);
  EXPECT_FALSE(logEnabled(LogLevel::kError));
}

TEST_F(LogTest, WriteFormatsLevelTagAndMessage) {
  ::testing::internal::CaptureStderr();
  Logger::write(LogLevel::kError, "mac", "backoff exhausted");
  Logger::write(LogLevel::kWarn, "phy", "w");
  Logger::write(LogLevel::kInfo, "grid", "i");
  Logger::write(LogLevel::kDebug, "gaf", "d");
  Logger::write(LogLevel::kTrace, "sim", "t");
  Logger::write(LogLevel::kOff, "none", "o");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[error] [mac] backoff exhausted\n"), std::string::npos);
  EXPECT_NE(out.find("[warn] [phy] w\n"), std::string::npos);
  EXPECT_NE(out.find("[info] [grid] i\n"), std::string::npos);
  EXPECT_NE(out.find("[debug] [gaf] d\n"), std::string::npos);
  EXPECT_NE(out.find("[trace] [sim] t\n"), std::string::npos);
  EXPECT_NE(out.find("[off] [none] o\n"), std::string::npos);
}

TEST_F(LogTest, MacroSkipsMessageConstructionWhenDisabled) {
  Logger::setLevel(LogLevel::kWarn);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "built";
  };
  ::testing::internal::CaptureStderr();
  ECGRID_LOG_DEBUG("test", count());  // below the level: expr must not run
  ECGRID_LOG_WARN("test", count());   // at the level: expr runs, line emitted
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(out.find("[warn] [test] built"), std::string::npos);
  EXPECT_EQ(out.find("[debug]"), std::string::npos);
}

TEST_F(LogTest, MacroStreamsMixedExpressions) {
  Logger::setLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  ECGRID_LOG_INFO("node/7", "seq=" << 42 << " at " << 1.5 << "s");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[info] [node/7] seq=42 at 1.5s"), std::string::npos);
}

TEST_F(LogTest, ConfigureAppliesGlobalAndPerComponentLevels) {
  Logger::configure("info,mac=debug,route=trace");
  EXPECT_EQ(Logger::level(), LogLevel::kInfo);
  EXPECT_TRUE(Logger::hasOverrides());
  EXPECT_EQ(Logger::levelFor("mac"), LogLevel::kDebug);
  EXPECT_EQ(Logger::levelFor("route"), LogLevel::kTrace);
  EXPECT_EQ(Logger::levelFor("phy"), LogLevel::kInfo);  // no override
  EXPECT_TRUE(logEnabled(LogLevel::kDebug, "mac"));
  EXPECT_FALSE(logEnabled(LogLevel::kDebug, "phy"));
  EXPECT_TRUE(logEnabled(LogLevel::kInfo, "phy"));
}

TEST_F(LogTest, ReconfigureClearsPreviousOverrides) {
  Logger::configure("info,mac=debug");
  ASSERT_TRUE(Logger::hasOverrides());
  Logger::configure("warn");
  EXPECT_EQ(Logger::level(), LogLevel::kWarn);
  EXPECT_FALSE(Logger::hasOverrides());
  EXPECT_EQ(Logger::levelFor("mac"), LogLevel::kWarn);
}

TEST_F(LogTest, BareOverrideSpecKeepsGlobalLevel) {
  Logger::setLevel(LogLevel::kError);
  Logger::configure("mac=debug");
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  EXPECT_EQ(Logger::levelFor("mac"), LogLevel::kDebug);
}

TEST_F(LogTest, PrefixesSimTimeWhileASimulatorIsAlive) {
  Logger::setLevel(LogLevel::kInfo);
  sim::Simulator simulator(1);
  simulator.schedule(1.5, [] {
    ECGRID_LOG_INFO("test", "mid-run line");
  });
  ::testing::internal::CaptureStderr();
  simulator.run();
  ECGRID_LOG_INFO("test", "post-run line");  // simulator still alive
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[t=1.500000] [info] [test] mid-run line"),
            std::string::npos);
}

TEST_F(LogTest, OmitsSimTimePrefixWithoutASimulator) {
  Logger::setLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  ECGRID_LOG_INFO("test", "bare line");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[info] [test] bare line"), std::string::npos);
  EXPECT_EQ(out.find("[t="), std::string::npos);
}

// Regression for the shard-safety audit of the global Logger: parallel
// scenario workers log (level gate, override lookups, line emission,
// thread-local sim-time prefixes) while another thread keeps calling
// Logger::configure. The tsan CI preset runs this test and holds the
// logger to its race-free contract; on any build it proves
// configure-while-running cannot crash or deadlock a sweep.
TEST_F(LogTest, ConfigureWhileParallelScenariosLogIsRaceFree) {
  Logger::configure("info,mac=debug");

  std::vector<harness::ScenarioConfig> configs;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    harness::ScenarioConfig config;
    config.hostCount = 15;
    config.fieldSize = 500.0;
    config.duration = 20.0;
    config.flowCount = 2;
    config.seed = seed;
    configs.push_back(config);
  }

  ::testing::internal::CaptureStderr();
  std::atomic<bool> stop{false};
  std::thread reconfigurer([&stop] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Logger::configure((++i % 2) != 0 ? "info,mac=debug,phy=trace"
                                       : "warn,route=debug");
      std::this_thread::yield();
    }
  });

  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, 4);

  stop.store(true, std::memory_order_relaxed);
  reconfigurer.join();
  ::testing::internal::GetCapturedStderr();  // swallow the log output

  ASSERT_EQ(results.size(), configs.size());
  for (const harness::ScenarioResult& result : results) {
    EXPECT_GT(result.eventsExecuted, 0u);
  }
}

}  // namespace
}  // namespace ecgrid::util
