// Stress tests for the pooled event queue: randomized interleavings of
// push/cancel/pop checked against a reference model that reimplements the
// previous shared_ptr + std::priority_queue design. The pooled queue's
// contract is that its observable behaviour — pop order, pending() — is
// indistinguishable from that design while allocating far less.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event.hpp"
#include "sim/rng.hpp"

namespace ecgrid::sim {
namespace {

// The pre-slab design, kept as an executable specification.
struct RefRecord {
  Time time = 0.0;
  std::uint64_t sequence = 0;
  bool cancelled = false;
  int tag = 0;
};

class RefQueue {
 public:
  std::shared_ptr<RefRecord> push(Time time, int tag) {
    auto record = std::make_shared<RefRecord>();
    record->time = time;
    record->sequence = nextSequence_++;
    record->tag = tag;
    heap_.push(record);
    return record;
  }

  /// Returns the next live record, or nullptr when drained.
  std::shared_ptr<RefRecord> pop() {
    while (!heap_.empty() && heap_.top()->cancelled) heap_.pop();
    if (heap_.empty()) return nullptr;
    auto top = heap_.top();
    heap_.pop();
    return top;
  }

 private:
  struct Later {
    bool operator()(const std::shared_ptr<RefRecord>& a,
                    const std::shared_ptr<RefRecord>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->sequence > b->sequence;
    }
  };
  std::priority_queue<std::shared_ptr<RefRecord>,
                      std::vector<std::shared_ptr<RefRecord>>, Later>
      heap_;
  std::uint64_t nextSequence_ = 0;
};

class QueueStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueStress, InterleavedOpsMatchReferenceModel) {
  RngStream rng(GetParam());
  EventQueue queue;
  RefQueue ref;

  // Handles to every not-yet-popped event, kept in lockstep.
  std::vector<EventHandle> handles;
  std::vector<std::shared_ptr<RefRecord>> refs;
  std::vector<int> popped;
  std::vector<int> refPopped;
  int nextTag = 0;

  for (int op = 0; op < 20000; ++op) {
    double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.55) {
      // Coarse times force plenty of ties to exercise sequence ordering.
      Time t = static_cast<Time>(rng.uniformInt(0, 50));
      int tag = nextTag++;
      handles.push_back(queue.push(t, [tag, &popped] { popped.push_back(tag); }));
      refs.push_back(ref.push(t, tag));
    } else if (dice < 0.75 && !handles.empty()) {
      std::size_t victim = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(handles.size()) - 1));
      handles[victim].cancel();
      refs[victim]->cancelled = true;
    } else {
      Time time = 0.0;
      InlineTask action;
      if (queue.pop(time, action)) action();
      auto refTop = ref.pop();
      if (refTop != nullptr) refPopped.push_back(refTop->tag);
      ASSERT_EQ(popped, refPopped) << "diverged at op " << op;
    }
    // Spot-check pending() parity on a random handle that has not been
    // popped yet (after popping, the reference record lives as long as
    // callers hold it, whereas the pooled slot retires at the next pop —
    // both designs report not-pending there, but via different paths that
    // the dedicated lifetime tests cover).
    if (!handles.empty() && rng.uniform(0.0, 1.0) < 0.2) {
      std::size_t probe = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(handles.size()) - 1));
      bool wasPopped = false;
      for (int tag : popped) {
        if (tag == refs[probe]->tag) {
          wasPopped = true;
          break;
        }
      }
      if (!wasPopped) {
        EXPECT_EQ(handles[probe].pending(), !refs[probe]->cancelled)
            << "handle " << probe << " at op " << op;
      }
    }
  }

  // Drain both completely; total order must agree to the last event.
  while (true) {
    Time time = 0.0;
    InlineTask action;
    bool live = queue.pop(time, action);
    auto refTop = ref.pop();
    ASSERT_EQ(live, refTop != nullptr);
    if (!live) break;
    action();
    refPopped.push_back(refTop->tag);
  }
  EXPECT_EQ(popped, refPopped);
  EXPECT_GT(popped.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueStress,
                         ::testing::Values(1u, 42u, 777u, 31337u));

// Slot churn: repeated fill/drain cycles reuse pooled slots; handles from
// earlier cycles must never observe later occupants of their slot.
TEST(EventQueuePool, HandlesFromPriorCyclesStayDead) {
  EventQueue queue;
  std::vector<EventHandle> stale;
  for (int cycle = 0; cycle < 10; ++cycle) {
    std::vector<EventHandle> fresh;
    for (int i = 0; i < 64; ++i) {
      fresh.push_back(queue.push(static_cast<Time>(i), [] {}));
    }
    for (const EventHandle& h : stale) EXPECT_FALSE(h.pending());
    for (EventHandle& h : stale) h.cancel();  // must not hit new events
    for (const EventHandle& h : fresh) EXPECT_TRUE(h.pending());
    Time time = 0.0;
    InlineTask action;
    int popCount = 0;
    while (queue.pop(time, action)) {
      action();
      ++popCount;
    }
    EXPECT_EQ(popCount, 64);
    stale = std::move(fresh);
  }
}

// The heap size bookkeeping the Simulator exposes for stats.
TEST(EventQueuePool, SizeIncludingCancelledCountsHeapEntries) {
  EventQueue queue;
  EventHandle a = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  EXPECT_EQ(queue.sizeIncludingCancelled(), 2u);
  a.cancel();
  // Lazy discard: still on the heap until it reaches the top.
  EXPECT_EQ(queue.sizeIncludingCancelled(), 2u);
  EXPECT_DOUBLE_EQ(queue.peekTime(), 2.0);  // discards the cancelled head
  EXPECT_EQ(queue.sizeIncludingCancelled(), 1u);
}

}  // namespace
}  // namespace ecgrid::sim
