// Workload-layer tests: plan validation (FlowPlan and WorkloadPlan),
// per-flow lifecycle accounting (aborted vs in-flight vs drained),
// distribution primitives against closed-form moments (mirroring the
// Gilbert–Elliott gates in fault_test.cpp), scenario integration, and
// the determinism gates for the new traffic/* streams: byte-identical
// replay of an armed workload, and the empty-plan inert surface.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "harness/scenario.hpp"
#include "sim/rng.hpp"
#include "stats/packet_accounting.hpp"
#include "traffic/flow_manager.hpp"
#include "test_net.hpp"
#include "traffic/workload/workload_generator.hpp"
#include "traffic/workload/workload_plan.hpp"

namespace ecgrid {
namespace {

// --------------------------------------------------------------------------
// FlowPlan validity (stopTime-aware)

TEST(FlowPlanValidate, AcceptsTheDefaultPlan) {
  traffic::FlowPlan plan;
  EXPECT_NO_THROW(plan.validate());
}

TEST(FlowPlanValidate, RejectsNegativeFlowCount) {
  traffic::FlowPlan plan;
  plan.flowCount = -1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FlowPlanValidate, RejectsEmptyWindow) {
  traffic::FlowPlan plan;
  plan.startTime = 10.0;
  plan.stopTime = 10.0;  // closes the instant it opens
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.stopTime = 5.0;  // closes before it opens
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FlowPlanValidate, RejectsNonPositiveRateAndPayload) {
  traffic::FlowPlan plan;
  plan.packetsPerSecond = 0.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.packetsPerSecond = 1.0;
  plan.payloadBytes = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

// --------------------------------------------------------------------------
// WorkloadPlan validity

traffic::WorkloadPlan onePlanClass() {
  traffic::WorkloadPlan plan;
  plan.classes.emplace_back();
  plan.stopTime = 100.0;
  return plan;
}

TEST(WorkloadPlanValidate, AcceptsTheDefaultClass) {
  EXPECT_NO_THROW(onePlanClass().validate());
}

TEST(WorkloadPlanValidate, RejectsDuplicateClassNames) {
  traffic::WorkloadPlan plan = onePlanClass();
  plan.classes.push_back(plan.classes.front());
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(WorkloadPlanValidate, RejectsMalformedClassName) {
  traffic::WorkloadPlan plan = onePlanClass();
  plan.classes.front().name = "bad name!";  // metric names cannot hold these
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.classes.front().name = "";
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(WorkloadPlanValidate, RejectsHeavyTailWithoutMean) {
  traffic::WorkloadPlan plan = onePlanClass();
  plan.classes.front().arrivals = traffic::ArrivalKind::kParetoOnOff;
  plan.classes.front().onOffShape = 1.0;  // infinite-mean sojourns
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(WorkloadPlanValidate, RejectsInvertedFlowSizeBounds) {
  traffic::WorkloadPlan plan = onePlanClass();
  plan.classes.front().minFlowBytes = 8192.0;
  plan.classes.front().maxFlowBytes = 1024.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(WorkloadPlanValidate, RejectsEmptyWindowAndZeroSinks) {
  traffic::WorkloadPlan plan = onePlanClass();
  plan.startTime = plan.stopTime;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = onePlanClass();
  plan.sinkCount = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

// --------------------------------------------------------------------------
// PacketAccounting per-flow lifecycle

TEST(FlowLifecycle, StampsFirstAttemptEvenForDeadSources) {
  stats::PacketAccounting accounting;
  accounting.onSent(5, 0, /*sourceAlive=*/false, 3.0);
  EXPECT_EQ(accounting.packetsSent(), 0u);  // dead sources issue nothing
  const stats::FlowTimes times = accounting.flowTimes(5);
  EXPECT_DOUBLE_EQ(times.firstAttempt, 3.0);
  EXPECT_EQ(times.attempts, 1u);
}

TEST(FlowLifecycle, DistinguishesAbortedFromInFlightFromDrained) {
  stats::PacketAccounting accounting;
  // Flow 1: fully drained.
  accounting.onSent(1, 0, true, 1.0);
  accounting.onReceived({1, 0, 1.0}, 1.5);
  // Flow 2: in flight — attempted, never delivered, nobody gave up.
  accounting.onSent(2, 0, true, 2.0);
  // Flow 3: aborted.
  accounting.onSent(3, 0, true, 3.0);
  accounting.onFlowAborted(3);
  accounting.onFlowAborted(3);  // idempotent

  EXPECT_EQ(accounting.abortedFlows(), 1u);
  EXPECT_EQ(accounting.inFlightFlows(), 1u);
  EXPECT_TRUE(accounting.flowTimes(3).aborted);
  EXPECT_FALSE(accounting.flowTimes(2).aborted);
  EXPECT_EQ(accounting.flowTimes(1).delivered, 1u);
}

TEST(FlowLifecycle, DeliveryListenerFiresOncePerUniqueDelivery) {
  stats::PacketAccounting accounting;
  int fired = 0;
  accounting.setDeliveryListener(
      [&fired](const net::DataTag&, sim::Time) { ++fired; });
  accounting.onSent(7, 0, true, 1.0);
  accounting.onReceived({7, 0, 1.0}, 1.2);
  accounting.onReceived({7, 0, 1.0}, 1.3);  // duplicate: suppressed
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(accounting.duplicatesSuppressed(), 1u);
}

// --------------------------------------------------------------------------
// Distribution primitives vs closed form

constexpr int kDraws = 200000;

TEST(WorkloadDistributions, PoissonInterArrivalMeanMatchesRate) {
  sim::RngStream rng(42);
  const double rate = 4.0;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += traffic::WorkloadGenerator::drawInterArrival(rng, rate);
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 1.0 / rate, 0.02 / rate);  // within 2% of 1/λ
}

TEST(WorkloadDistributions, ParetoTailIndexMatchesMle) {
  // The Hill/MLE estimator for a Pareto(xm, α) sample is
  //   α̂ = n / Σ ln(xᵢ/xm),
  // consistent with variance α²/n — at n = 2·10⁵ the estimate sits
  // within a fraction of a percent of the true index.
  sim::RngStream rng(7);
  const double xm = 2.0;
  const double shape = 1.5;
  double logSum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = traffic::WorkloadGenerator::drawPareto(rng, xm, shape);
    ASSERT_GE(x, xm);
    logSum += std::log(x / xm);
  }
  const double estimated = kDraws / logSum;
  EXPECT_NEAR(estimated, shape, 0.02 * shape);
}

TEST(WorkloadDistributions, BoundedParetoStaysBoundedWithAnalyticMean) {
  sim::RngStream rng(11);
  const double xm = 1024.0;
  const double shape = 1.3;
  const double cap = 262144.0;
  // Truncated-Pareto mean, α ≠ 1:
  //   E[X] = α/(α−1) · xm^α (xm^{1−α} − cap^{1−α}) / (1 − (xm/cap)^α)
  const double analyticMean = shape / (shape - 1.0) * std::pow(xm, shape) *
                              (std::pow(xm, 1.0 - shape) -
                               std::pow(cap, 1.0 - shape)) /
                              (1.0 - std::pow(xm / cap, shape));
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x =
        traffic::WorkloadGenerator::drawBoundedPareto(rng, xm, shape, cap);
    ASSERT_GE(x, xm);
    ASSERT_LE(x, cap);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, analyticMean, 0.02 * analyticMean);
}

TEST(WorkloadDistributions, ParetoSojournHitsConfiguredMean) {
  sim::RngStream rng(13);
  const double mean = 5.0;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += traffic::WorkloadGenerator::drawParetoSojourn(rng, mean, 2.5);
  }
  EXPECT_NEAR(sum / kDraws, mean, 0.03 * mean);
}

TEST(WorkloadDistributions, DegenerateBoundReturnsTheScale) {
  sim::RngStream rng(3);
  EXPECT_DOUBLE_EQ(
      traffic::WorkloadGenerator::drawBoundedPareto(rng, 100.0, 1.5, 100.0),
      100.0);
}

// --------------------------------------------------------------------------
// Scenario integration + determinism gates

harness::ScenarioConfig workloadBase() {
  harness::ScenarioConfig config;
  config.hostCount = 20;
  config.flowCount = 2;
  config.duration = 40.0;
  config.seed = 5;
  config.auditInvariants = true;
  return config;
}

traffic::WorkloadPlan activePlan() {
  traffic::WorkloadPlan plan;
  traffic::WorkloadClass cls;
  cls.name = "interactive";
  cls.sessionsPerSecond = 1.0;
  cls.maxFlowBytes = 8192.0;
  cls.abortAfterSeconds = 10.0;
  plan.classes.push_back(cls);
  traffic::WorkloadClass bulk;
  bulk.name = "bulk";
  bulk.arrivals = traffic::ArrivalKind::kParetoOnOff;
  bulk.sessionsPerSecond = 2.0;
  bulk.minFlowBytes = 4096.0;
  bulk.maxFlowBytes = 65536.0;
  bulk.requestResponse = false;
  bulk.sloSeconds = 10.0;
  bulk.abortAfterSeconds = 15.0;
  plan.classes.push_back(bulk);
  return plan;
}

TEST(WorkloadScenario, ArmedWorkloadGeneratesAndAccountsSessions) {
  harness::ScenarioConfig config = workloadBase();
  config.workload = activePlan();
  const harness::ScenarioResult result = harness::runScenario(config);

  // Sessions must have been attempted and reflected in the metrics.
  const auto attempted =
      result.metrics.find("workload.interactive.sessions_attempted");
  ASSERT_NE(attempted, result.metrics.end());
  EXPECT_GT(attempted->second, 0.0);
  ASSERT_NE(result.metrics.find("workload.bulk.sessions_attempted"),
            result.metrics.end());
  ASSERT_NE(result.metrics.find("workload.interactive.latency_s.count"),
            result.metrics.end());
  ASSERT_NE(result.metrics.find("workload.request_packets_sent"),
            result.metrics.end());

  // ScenarioResult::abortedFlows mirrors the accounting and the snapshot.
  const auto aborted = result.metrics.find("traffic.aborted_flows");
  ASSERT_NE(aborted, result.metrics.end());
  EXPECT_DOUBLE_EQ(aborted->second,
                   static_cast<double>(result.abortedFlows));

  // Completions within SLO can never exceed completions.
  const auto completed =
      result.metrics.find("workload.interactive.flows_completed");
  const auto sloMet = result.metrics.find("workload.interactive.slo_met");
  ASSERT_NE(completed, result.metrics.end());
  ASSERT_NE(sloMet, result.metrics.end());
  EXPECT_LE(sloMet->second, completed->second);
}

TEST(WorkloadScenario, ReplayIsByteIdentical) {
  harness::ScenarioConfig config = workloadBase();
  config.workload = activePlan();
  config.digestEveryEvents = 5000;
  const harness::ScenarioResult a = harness::runScenario(config);
  const harness::ScenarioResult b = harness::runScenario(config);

  ASSERT_EQ(a.digestTrace.size(), b.digestTrace.size());
  for (std::size_t i = 0; i < a.digestTrace.size(); ++i) {
    EXPECT_EQ(a.digestTrace[i].digest, b.digestTrace[i].digest);
  }
  EXPECT_EQ(a.packetsSent, b.packetsSent);
  EXPECT_EQ(a.abortedFlows, b.abortedFlows);
  EXPECT_EQ(a.metrics, b.metrics);  // includes every workload.* series
}

TEST(WorkloadScenario, EmptyPlanLeavesNoWorkloadSurface) {
  // The inert gate: a default (empty) plan registers nothing — no
  // workload.* metric, no traffic.aborted_flows key, zero aborts — so
  // metric snapshots of plain CBR runs are byte-identical to the
  // pre-workload era (the committed BENCH_*.json files pin the digests).
  const harness::ScenarioResult result = harness::runScenario(workloadBase());
  EXPECT_EQ(result.abortedFlows, 0u);
  for (const auto& [name, value] : result.metrics) {
    (void)value;
    EXPECT_NE(name.rfind("workload.", 0), 0u) << name;
    EXPECT_NE(name, "traffic.aborted_flows");
  }
}

TEST(WorkloadScenario, SinksAndClientsAreDisjoint) {
  harness::ScenarioConfig config = workloadBase();
  config.workload = activePlan();
  config.workload.clientPopulation = 6;
  config.workload.sinkCount = 2;

  // Drive the generator directly so the drawn populations are visible.
  test::TestNet net;
  for (int i = 0; i < 10; ++i) {
    net.addStatic(i, {100.0 * i, 100.0});
  }
  stats::PacketAccounting accounting;
  traffic::WorkloadPlan plan = config.workload;
  plan.stopTime = config.duration;
  traffic::WorkloadGenerator generator(net.network, plan, accounting);

  EXPECT_EQ(generator.sinks().size(), 2u);
  EXPECT_EQ(generator.clients().size(), 6u);
  for (net::NodeId client : generator.clients()) {
    for (net::NodeId sink : generator.sinks()) {
      EXPECT_NE(client, sink);
    }
  }
}

}  // namespace
}  // namespace ecgrid
