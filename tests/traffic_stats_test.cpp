// Tests for traffic generation, packet accounting, time series, the
// energy recorder, and CSV output.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "protocols/flooding/flooding_protocol.hpp"
#include "stats/energy_recorder.hpp"
#include "stats/trace_recorder.hpp"
#include "stats/packet_accounting.hpp"
#include "stats/timeseries.hpp"
#include "test_net.hpp"
#include "traffic/cbr.hpp"
#include "traffic/flow_manager.hpp"

namespace ecgrid::test {
namespace {

TEST(Cbr, EmitsAtConfiguredRate) {
  TestNet net;
  net::Node& a = net.addStatic(1, {50.0, 50.0});
  net::Node& b = net.addStatic(2, {150.0, 50.0});
  net.installGrid(a);
  net.installGrid(b);
  traffic::CbrFlowConfig config;
  config.source = 1;
  config.destination = 2;
  config.packetsPerSecond = 4.0;
  config.startTime = 1.0;
  int sent = 0;
  traffic::CbrSource source(
      net.simulator, a, config,
      [&](const traffic::CbrFlowConfig&, std::uint64_t, bool) { ++sent; });
  net.network.start();
  net.simulator.run(11.01);
  EXPECT_EQ(sent, 41);  // t = 1.0, 1.25, ... 11.0
}

TEST(Cbr, StopsAtStopTimeAndOnStop) {
  TestNet net;
  net::Node& a = net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {150.0, 50.0});
  net.installGridEverywhere();
  traffic::CbrFlowConfig config;
  config.source = 1;
  config.destination = 2;
  config.packetsPerSecond = 1.0;
  config.startTime = 0.0;
  config.stopTime = 5.0;
  int sent = 0;
  traffic::CbrSource source(
      net.simulator, a, config,
      [&](const traffic::CbrFlowConfig&, std::uint64_t, bool) { ++sent; });
  net.network.start();
  net.simulator.run(20.0);
  EXPECT_EQ(sent, 5);  // 0,1,2,3,4 — the tick at 5.0 observes stopTime
}

TEST(Cbr, DeadSourceStopsCounting) {
  TestNet net;
  net::Node& a = net.addStatic(1, {50.0, 50.0}, /*batteryJ=*/5.0);
  net.addStatic(2, {150.0, 50.0});
  net.installGridEverywhere();
  traffic::CbrFlowConfig config;
  config.source = 1;
  config.destination = 2;
  config.packetsPerSecond = 1.0;
  int alive = 0;
  int dead = 0;
  traffic::CbrSource source(
      net.simulator, a, config,
      [&](const traffic::CbrFlowConfig&, std::uint64_t, bool wasAlive) {
        (wasAlive ? alive : dead)++;
      });
  net.network.start();
  net.simulator.run(20.0);  // battery dies at ~5.8 s
  EXPECT_GE(alive, 5);
  EXPECT_LE(alive, 7);
  EXPECT_GT(dead, 5);
}

TEST(Cbr, RejectsSelfFlow) {
  TestNet net;
  net::Node& a = net.addStatic(1, {50.0, 50.0});
  net.installGrid(a);
  traffic::CbrFlowConfig config;
  config.source = 1;
  config.destination = 1;
  EXPECT_THROW(traffic::CbrSource(net.simulator, a, config, nullptr),
               std::invalid_argument);
}

TEST(PacketAccounting, ComputesDeliveryRate) {
  stats::PacketAccounting accounting;
  for (std::uint64_t s = 0; s < 10; ++s) accounting.onSent(1, s, true);
  for (std::uint64_t s = 0; s < 8; ++s) {
    net::DataTag tag{1, s, 0.5};
    accounting.onReceived(tag, 0.6);
  }
  EXPECT_EQ(accounting.packetsSent(), 10u);
  EXPECT_EQ(accounting.packetsReceived(), 8u);
  EXPECT_DOUBLE_EQ(accounting.deliveryRate(), 0.8);
}

TEST(PacketAccounting, DeadSourceAttemptsDontCount) {
  stats::PacketAccounting accounting;
  accounting.onSent(1, 0, true);
  accounting.onSent(1, 1, false);  // source was dead
  EXPECT_EQ(accounting.packetsSent(), 1u);
}

TEST(PacketAccounting, SuppressesDuplicateDeliveries) {
  stats::PacketAccounting accounting;
  accounting.onSent(1, 0, true);
  net::DataTag tag{1, 0, 1.0};
  accounting.onReceived(tag, 1.1);
  accounting.onReceived(tag, 1.2);  // flooding duplicate
  EXPECT_EQ(accounting.packetsReceived(), 1u);
  EXPECT_EQ(accounting.duplicatesSuppressed(), 1u);
  EXPECT_DOUBLE_EQ(accounting.deliveryRate(), 1.0);
}

TEST(PacketAccounting, LatencyStatistics) {
  stats::PacketAccounting accounting;
  for (std::uint64_t s = 0; s < 4; ++s) {
    accounting.onSent(1, s, true);
    net::DataTag tag{1, s, 10.0};
    accounting.onReceived(tag, 10.0 + 0.01 * static_cast<double>(s + 1));
  }
  EXPECT_NEAR(accounting.meanLatency(), 0.025, 1e-9);
  EXPECT_NEAR(accounting.latencyPercentile(0.0), 0.01, 1e-9);
  EXPECT_NEAR(accounting.latencyPercentile(100.0), 0.04, 1e-9);
  EXPECT_NEAR(accounting.latencyPercentile(50.0), 0.025, 1e-9);
}

TEST(PacketAccounting, EmptyAccountingDefaults) {
  stats::PacketAccounting accounting;
  EXPECT_DOUBLE_EQ(accounting.deliveryRate(), 1.0);
  EXPECT_DOUBLE_EQ(accounting.meanLatency(), 0.0);
  EXPECT_DOUBLE_EQ(accounting.latencyPercentile(99.0), 0.0);
}

TEST(PacketAccounting, PerFlowRates) {
  stats::PacketAccounting accounting;
  accounting.onSent(1, 0, true);
  accounting.onSent(2, 0, true);
  accounting.onSent(2, 1, true);
  accounting.onReceived(net::DataTag{2, 0, 0.0}, 0.1);
  auto rates = accounting.perFlowDeliveryRate();
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
  EXPECT_DOUBLE_EQ(rates[2], 0.5);
}

TEST(TimeSeries, ValueAtIsStepwise) {
  stats::TimeSeries series("s");
  series.add(0.0, 1.0);
  series.add(10.0, 0.5);
  series.add(20.0, 0.2);
  EXPECT_DOUBLE_EQ(series.valueAt(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(series.valueAt(5.0), 1.0);
  EXPECT_DOUBLE_EQ(series.valueAt(10.0), 0.5);
  EXPECT_DOUBLE_EQ(series.valueAt(15.0), 0.5);
  EXPECT_DOUBLE_EQ(series.valueAt(100.0), 0.2);
}

TEST(TimeSeries, FirstTimeBelow) {
  stats::TimeSeries series("s");
  series.add(0.0, 1.0);
  series.add(10.0, 0.5);
  series.add(20.0, 0.0);
  EXPECT_DOUBLE_EQ(series.firstTimeBelow(0.6), 10.0);
  EXPECT_DOUBLE_EQ(series.firstTimeBelow(0.0), 20.0);
  EXPECT_GE(series.firstTimeBelow(-1.0), sim::kTimeNever);
}

TEST(Csv, WritesAlignedSeries) {
  stats::TimeSeries a("alpha");
  a.add(0.0, 1.0);
  a.add(1.0, 2.0);
  stats::TimeSeries b("beta");
  b.add(0.0, 3.0);
  b.add(1.0, 4.0);
  std::string path =
      (std::filesystem::temp_directory_path() / "ecgrid_csv_test.csv")
          .string();
  stats::writeCsv(path, {a, b});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time,alpha,beta");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,3");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2,4");
  std::filesystem::remove(path);
}

TEST(EnergyRecorder, SamplesAliveAndAen) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0}, /*batteryJ=*/10.0);   // dies at ~11.6 s
  net.addStatic(2, {150.0, 50.0}, /*batteryJ=*/500.0);
  net.installGridEverywhere();
  stats::EnergyRecorder recorder(net.network, 1.0);
  net.network.start();
  net.simulator.run(20.0);
  recorder.sample();
  EXPECT_DOUBLE_EQ(recorder.aliveFraction().points().front().second, 1.0);
  EXPECT_DOUBLE_EQ(recorder.aliveFraction().points().back().second, 0.5);
  ASSERT_EQ(recorder.deathTimes().size(), 1u);
  EXPECT_NEAR(recorder.firstDeath(), 10.0 / 0.863, 0.2);
  // aen is monotone non-decreasing.
  double last = 0.0;
  for (auto [t, v] : recorder.aen().points()) {
    EXPECT_GE(v, last - 1e-12);
    last = v;
  }
}

TEST(EnergyRecorder, ExcludesInfiniteBatteriesByDefault) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});
  net::NodeConfig endpointConfig;
  endpointConfig.id = 2;
  endpointConfig.infiniteBattery = true;
  net.network.addNode(
      std::make_unique<mobility::StaticMobility>(geo::Vec2{150.0, 50.0}),
      endpointConfig);
  net.installGridEverywhere();
  stats::EnergyRecorder recorder(net.network, 1.0);
  net.network.start();
  net.simulator.run(5.0);
  // Only the metered (finite) host contributes: aen > 0 and rises at the
  // idle rate (0.863/500 per second).
  recorder.sample();
  EXPECT_NEAR(recorder.aen().points().back().second, 5.0 * 0.863 / 500.0,
              1e-3);
}

TEST(TraceRecorder, WritesOneJsonLinePerHostPerSample) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {30.0, 30.0});
  net.installEcgridEverywhere();
  std::string path =
      (std::filesystem::temp_directory_path() / "ecgrid_trace_test.jsonl")
          .string();
  {
    stats::TraceRecorder trace(net.network, 1.0, path);
    net.network.start();
    net.simulator.run(5.0);
    trace.flush();
    // Samples at t=0..5 inclusive of the initial one: 6 ticks × 2 hosts.
    EXPECT_EQ(trace.linesWritten(), 12u);
  }
  std::ifstream in(path);
  std::string line;
  // v2 opens with a schema header line, excluded from linesWritten().
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"schema\":\"ecgrid-state\""), std::string::npos);
  EXPECT_NE(line.find("\"version\":2"), std::string::npos);
  int lines = 0;
  bool sawGateway = false;
  bool sawSleeper = false;
  bool sawServed = false;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"battery\":"), std::string::npos);
    bool gateway = line.find("\"gateway\":true") != std::string::npos;
    sawGateway |= gateway;
    sawSleeper |= line.find("\"sleeping\":true") != std::string::npos;
    // served_x/served_y appear on gateway records only.
    bool served = line.find("\"served_x\":") != std::string::npos;
    sawServed |= served;
    if (served) {
      EXPECT_TRUE(gateway);
    }
  }
  EXPECT_EQ(lines, 12);
  EXPECT_TRUE(sawGateway);
  EXPECT_TRUE(sawSleeper);
  EXPECT_TRUE(sawServed);
  std::filesystem::remove(path);
}

TEST(FlowManager, CreatesDistinctEndpointFlows) {
  TestNet net;
  for (int i = 0; i < 6; ++i) {
    net.addStatic(i, {50.0 + 30.0 * i, 50.0});
  }
  net.installGridEverywhere();
  stats::PacketAccounting accounting;
  traffic::FlowPlan plan;
  plan.flowCount = 4;
  plan.packetsPerSecond = 2.0;
  traffic::FlowManager flows(net.network, plan, accounting,
                             net.simulator.rng().stream("flows"));
  ASSERT_EQ(flows.flows().size(), 4u);
  for (const auto& flow : flows.flows()) {
    EXPECT_NE(flow.source, flow.destination);
  }
  net.network.start();
  net.simulator.run(10.0);
  EXPECT_GT(accounting.packetsSent(), 50u);
  EXPECT_GT(accounting.deliveryRate(), 0.9);
}

TEST(Flooding, ActsAsDeliveryOracle) {
  TestNet net;
  for (int i = 0; i < 8; ++i) {
    net::Node& node = net.addStatic(i, {60.0 + 120.0 * i, 50.0});
    node.setProtocol(std::make_unique<protocols::FloodingProtocol>(
        node, protocols::FloodingConfig{}));
  }
  int delivered = 0;
  net.network.findNode(7)->setAppReceiveCallback(
      [&](net::NodeId src, const net::DataTag&, int) {
        EXPECT_EQ(src, 0);
        ++delivered;
      });
  net.network.start();
  net.network.findNode(0)->sendFromApp(7, 64, {});
  net.simulator.run(5.0);
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace ecgrid::test
