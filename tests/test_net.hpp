// Shared fixture helpers: tiny deterministic networks with hand-placed
// hosts for protocol-level tests.
#pragma once

#include <memory>
#include <vector>

#include "core/ecgrid_protocol.hpp"
#include "mobility/mobility_model.hpp"
#include "net/network.hpp"
#include "protocols/gaf/gaf_protocol.hpp"
#include "protocols/grid/grid_protocol.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::test {

/// A network of hand-placed hosts sharing one simulator. Protocols are
/// installed per node via the install* helpers; positions are static
/// unless a scripted model is supplied.
struct TestNet {
  sim::Simulator simulator{12345};
  net::Network network;

  explicit TestNet(net::NetworkConfig config = {})
      : network(simulator, config) {}

  net::Node& addStatic(net::NodeId id, geo::Vec2 position,
                       double batteryJ = 500.0) {
    net::NodeConfig config;
    config.id = id;
    config.batteryCapacityJ = batteryJ;
    return network.addNode(std::make_unique<mobility::StaticMobility>(position),
                           config);
  }

  net::Node& addScripted(net::NodeId id,
                         std::vector<mobility::ScriptedMobility::Leg> legs,
                         double batteryJ = 500.0) {
    net::NodeConfig config;
    config.id = id;
    config.batteryCapacityJ = batteryJ;
    return network.addNode(
        std::make_unique<mobility::ScriptedMobility>(std::move(legs)), config);
  }

  void installGrid(net::Node& node,
                   protocols::GridProtocolConfig config = {}) {
    node.setProtocol(
        std::make_unique<protocols::GridProtocol>(node, std::move(config)));
  }

  void installEcgrid(net::Node& node, core::EcgridConfig config = {}) {
    node.setProtocol(std::make_unique<core::EcgridProtocol>(node, config));
  }

  void installGaf(net::Node& node, protocols::GafConfig config = {}) {
    node.setProtocol(std::make_unique<protocols::GafProtocol>(node, config));
  }

  void installGridEverywhere(protocols::GridProtocolConfig config = {}) {
    for (auto& node : network.nodes()) installGrid(*node, config);
  }

  void installEcgridEverywhere(core::EcgridConfig config = {}) {
    for (auto& node : network.nodes()) installEcgrid(*node, config);
  }

  void start(sim::Time warmup = 0.0) {
    network.start();
    if (warmup > 0.0) simulator.run(warmup);
  }

  protocols::GridProtocolBase& gridProtocolOf(net::NodeId id) {
    auto* proto = dynamic_cast<protocols::GridProtocolBase*>(
        &network.findNode(id)->protocol());
    if (proto == nullptr) throw std::logic_error("not a grid-family protocol");
    return *proto;
  }

  core::EcgridProtocol& ecgridOf(net::NodeId id) {
    auto* proto =
        dynamic_cast<core::EcgridProtocol*>(&network.findNode(id)->protocol());
    if (proto == nullptr) throw std::logic_error("not ECGRID");
    return *proto;
  }

  /// Ids of all current gateways (grid-family protocols only).
  std::vector<net::NodeId> gateways() {
    std::vector<net::NodeId> out;
    for (auto& node : network.nodes()) {
      auto* proto =
          dynamic_cast<protocols::GridProtocolBase*>(&node->protocol());
      if (proto != nullptr && proto->isGateway()) out.push_back(node->id());
    }
    return out;
  }
};

}  // namespace ecgrid::test
