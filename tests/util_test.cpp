// Tests for utilities: flags parsing, contract macros, logging plumbing.
#include <gtest/gtest.h>

#include <cctype>

#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

namespace ecgrid::util {
namespace {

Flags parse(std::vector<const char*> argv, std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  return Flags(static_cast<int>(argv.size()), argv.data(), std::move(known));
}

TEST(Flags, ParsesEqualsForm) {
  Flags flags = parse({"--hosts=50", "--speed=2.5"}, {"hosts", "speed"});
  EXPECT_EQ(flags.getInt("hosts", 0), 50);
  EXPECT_DOUBLE_EQ(flags.getDouble("speed", 0.0), 2.5);
}

TEST(Flags, ParsesSpaceForm) {
  Flags flags = parse({"--hosts", "50"}, {"hosts"});
  EXPECT_EQ(flags.getInt("hosts", 0), 50);
}

TEST(Flags, BareFlagIsTrue) {
  Flags flags = parse({"--verbose"}, {"verbose"});
  EXPECT_TRUE(flags.getBool("verbose", false));
  EXPECT_TRUE(flags.has("verbose"));
}

TEST(Flags, FallbacksWhenAbsent) {
  Flags flags = parse({}, {"hosts"});
  EXPECT_EQ(flags.getInt("hosts", 42), 42);
  EXPECT_EQ(flags.getString("hosts", "x"), "x");
  EXPECT_FALSE(flags.has("hosts"));
}

TEST(Flags, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--bogus=1"}, {"hosts"}), std::invalid_argument);
}

TEST(Flags, PositionalArgumentsCollected) {
  Flags flags = parse({"alpha", "--hosts=1", "beta"}, {"hosts"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Flags, BoolParsing) {
  Flags flags = parse({"--a=true", "--b=0", "--c=yes", "--d=nope"},
                      {"a", "b", "c", "d"});
  EXPECT_TRUE(flags.getBool("a", false));
  EXPECT_FALSE(flags.getBool("b", true));
  EXPECT_TRUE(flags.getBool("c", false));
  EXPECT_FALSE(flags.getBool("d", true));
}

TEST(Contracts, RequireThrowsInvalidArgument) {
  EXPECT_THROW(ECGRID_REQUIRE(false, "nope"), std::invalid_argument);
  EXPECT_NO_THROW(ECGRID_REQUIRE(true, "fine"));
}

TEST(Contracts, CheckThrowsLogicError) {
  EXPECT_THROW(ECGRID_CHECK(false, "invariant"), std::logic_error);
  EXPECT_NO_THROW(ECGRID_CHECK(true, "fine"));
}

TEST(Contracts, MessagesCarryContext) {
  try {
    ECGRID_REQUIRE(1 == 2, "one is not two");
    FAIL();
  } catch (const std::invalid_argument& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(Contracts, RequireMessageCarriesFileAndLine) {
  try {
    ECGRID_REQUIRE(2 + 2 == 5, "arithmetic is safe");
    FAIL();
  } catch (const std::invalid_argument& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
    // file:line — a colon followed by digits after the file name.
    auto colon = what.find("util_test.cpp:");
    ASSERT_NE(colon, std::string::npos);
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(
        what[colon + std::string("util_test.cpp:").size()])));
    EXPECT_NE(what.find("arithmetic is safe"), std::string::npos);
  }
}

TEST(Contracts, CheckMessageCarriesExpressionFileLineAndDetail) {
  try {
    ECGRID_CHECK(0 > 1, "zero outranked one");
    FAIL();
  } catch (const std::logic_error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("invariant violated"), std::string::npos);
    EXPECT_NE(what.find("0 > 1"), std::string::npos);
    auto colon = what.find("util_test.cpp:");
    ASSERT_NE(colon, std::string::npos);
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(
        what[colon + std::string("util_test.cpp:").size()])));
    EXPECT_NE(what.find("zero outranked one"), std::string::npos);
  }
}

TEST(Contracts, CheckIsNotCaughtAsInvalidArgument) {
  // The two macros throw distinct types so callers can tell caller
  // contract breaches from internal invariant breakage.
  bool caughtAsInvalidArgument = false;
  try {
    ECGRID_CHECK(false, "");
  } catch (const std::invalid_argument&) {
    caughtAsInvalidArgument = true;
  } catch (const std::logic_error&) {
  }
  EXPECT_FALSE(caughtAsInvalidArgument);
}

TEST(Contracts, EmptyMessageOmitsSeparator) {
  try {
    ECGRID_REQUIRE(false, "");
    FAIL();
  } catch (const std::invalid_argument& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("requirement failed"), std::string::npos);
    EXPECT_EQ(what.find("—"), std::string::npos);
  }
}

TEST(Log, LevelParsing) {
  EXPECT_EQ(Logger::parseLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(Logger::parseLevel("3"), LogLevel::kInfo);
  EXPECT_EQ(Logger::parseLevel("whatever"), LogLevel::kOff);
}

TEST(Log, LevelGatesEmission) {
  LogLevel original = Logger::level();
  Logger::setLevel(LogLevel::kWarn);
  EXPECT_TRUE(logEnabled(LogLevel::kError));
  EXPECT_TRUE(logEnabled(LogLevel::kWarn));
  EXPECT_FALSE(logEnabled(LogLevel::kInfo));
  Logger::setLevel(original);
}

}  // namespace
}  // namespace ecgrid::util
