// Tests for wire messages and the Packet container: byte-accurate sizes,
// typed header access, sequence freshness.
#include <gtest/gtest.h>

#include "mac/csma.hpp"
#include "protocols/common/messages.hpp"
#include "protocols/gaf/gaf_protocol.hpp"

namespace ecgrid::protocols {
namespace {

TEST(SeqFresher, HandlesWraparound) {
  EXPECT_TRUE(seqFresher(2, 1));
  EXPECT_FALSE(seqFresher(1, 2));
  EXPECT_FALSE(seqFresher(1, 1));
  EXPECT_TRUE(seqFresher(3, 0xFFFFFFF0u));   // wrapped is fresher
  EXPECT_FALSE(seqFresher(0xFFFFFFF0u, 3));
}

TEST(Messages, WireSizes) {
  HelloHeader hello(1, {2, 3}, true, energy::BatteryLevel::kUpper, 4.0,
                    {5.0, 6.0});
  EXPECT_EQ(hello.bytes(), 28);

  RetireHeader retireEmpty({1, 1}, {});
  EXPECT_EQ(retireEmpty.bytes(), 12);
  RetireHeader retireTwo({1, 1}, std::vector<RouteRecord>(2));
  EXPECT_EQ(retireTwo.bytes(), 12 + 2 * kRouteRecordBytes);

  AcqHeader acq(1, {0, 0}, 9);
  EXPECT_EQ(acq.bytes(), 16);
  LeaveHeader leave(1, {0, 0});
  EXPECT_EQ(leave.bytes(), 12);
  SleepNoticeHeader snooze(1, {0, 0});
  EXPECT_EQ(snooze.bytes(), 12);

  RreqHeader rreq(1, 2, 3, 4, 5, geo::GridRect::everywhere(), {0, 0},
                  {1.0, 2.0}, 0);
  EXPECT_EQ(rreq.bytes(), 52);
  RrepHeader rrep(1, 3, 7, {5, 5}, {4, 5}, {450.0, 550.0}, 2);
  EXPECT_EQ(rrep.bytes(), 40);
  RerrHeader rerr(1, 3, 7, {4, 5});
  EXPECT_EQ(rerr.bytes(), 20);

  // The paper's 512 B CBR payload with grid header on top.
  DataHeader data(1, 3, 512, {});
  EXPECT_EQ(data.bytes(), 532);
}

TEST(Messages, PacketAddsMacFraming) {
  net::Packet frame;
  frame.header = std::make_shared<DataHeader>(1, 2, 512, net::DataTag{});
  EXPECT_EQ(frame.bytes(), 512 + 20 + net::kMacOverheadBytes);
}

TEST(Messages, TypedHeaderAccess) {
  net::Packet frame;
  frame.header = std::make_shared<AcqHeader>(4, geo::GridCoord{1, 2}, 9);
  ASSERT_NE(frame.headerAs<AcqHeader>(), nullptr);
  EXPECT_EQ(frame.headerAs<AcqHeader>()->destination(), 9);
  EXPECT_EQ(frame.headerAs<HelloHeader>(), nullptr);
  EXPECT_EQ(frame.headerAs<DataHeader>(), nullptr);
}

TEST(Messages, HeadersAreImmutableShared) {
  auto hello = std::make_shared<HelloHeader>(
      1, geo::GridCoord{0, 0}, false, energy::BatteryLevel::kUpper, 0.0,
      geo::Vec2{});
  net::Packet a;
  a.header = hello;
  net::Packet b = a;  // copy shares the header
  EXPECT_EQ(a.header.get(), b.header.get());
}

TEST(Messages, DescribeIsHumanReadable) {
  HelloHeader hello(7, {2, 3}, true, energy::BatteryLevel::kBoundary, 4.0, {});
  EXPECT_NE(hello.describe().find("id=7"), std::string::npos);
  DataHeader data(1, 2, 10, net::DataTag{0, 42, 0.0});
  EXPECT_NE(data.describe().find("seq=42"), std::string::npos);
}

TEST(Messages, GafDiscoverySize) {
  GafDiscoveryHeader disc(1, {0, 0}, GafDiscoveryHeader::NodeState::kActive,
                          0.9, 30.0, {10.0, 10.0});
  EXPECT_EQ(disc.bytes(), 32);
}

TEST(Messages, MacAckIsTiny) {
  mac::AckHeader ack(17);
  EXPECT_EQ(ack.bytes(), 2);
  net::Packet frame;
  frame.header = std::make_shared<mac::AckHeader>(17);
  EXPECT_EQ(frame.bytes(), 36);  // 2 + 34 B MAC framing
}

}  // namespace
}  // namespace ecgrid::protocols
