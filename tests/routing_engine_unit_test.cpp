// White-box unit tests for RoutingEngine against a scripted fake HostEnv:
// no radios, no MAC — every frame the engine emits is captured and frames
// are injected directly, so each rule is tested in isolation.
#include <gtest/gtest.h>

#include <deque>

#include "protocols/common/routing_engine.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::protocols {
namespace {

/// Captures outgoing frames instead of transmitting them.
class FakeLink final : public net::LinkLayer {
 public:
  void send(net::Packet packet) override { sent.push_back(std::move(packet)); }
  void setReceiveCallback(std::function<void(const net::Packet&)>) override {}
  void setSendFailureCallback(
      std::function<void(const net::Packet&)>) override {}
  std::size_t queueDepth() const override { return 0; }
  void clearQueue() override {}

  std::deque<net::Packet> sent;
};

class FakeEnv final : public net::HostEnv {
 public:
  explicit FakeEnv(net::NodeId id) : id_(id), simulator_(99) {}

  sim::Simulator& simulator() override { return simulator_; }
  net::NodeId id() const override { return id_; }
  const geo::GridMap& gridMap() const override { return grid_; }
  geo::Vec2 position() override { return position_; }
  geo::Vec2 velocity() override { return {}; }
  geo::GridCoord cell() override { return grid_.cellOf(position_); }
  sim::Time nextPossibleCellExit() override { return sim::kTimeNever; }
  net::LinkLayer& link() override { return link_; }
  void sleepRadio() override {}
  void wakeRadio() override {}
  bool radioSleeping() const override { return false; }
  void pageHost(net::NodeId) override {}
  void pageGrid(const geo::GridCoord&) override {}
  energy::BatteryLevel batteryLevel() override {
    return energy::BatteryLevel::kUpper;
  }
  double batteryRatio() override { return 1.0; }
  bool alive() const override { return true; }
  void deliverToApp(net::NodeId, const net::DataTag&, int) override {
    ++appDeliveries;
  }

  net::NodeId id_;
  sim::Simulator simulator_;
  geo::GridMap grid_{100.0};
  geo::Vec2 position_{150.0, 50.0};  // cell (1,0)
  FakeLink link_;
  int appDeliveries = 0;
};

/// An engine wired as the router of cell (1,0), knowing the routers of
/// (0,0) and (2,0), with host 77 local.
struct EngineRig {
  FakeEnv env{10};
  RoutingEngine::Hooks hooks;
  RoutingConfig config;
  std::unique_ptr<RoutingEngine> engine;
  bool isRouter = true;
  std::vector<std::pair<geo::GridCoord, net::NodeId>> knownRouters = {
      {{0, 0}, 20}, {{2, 0}, 30}};
  std::vector<net::NodeId> localHosts = {77};
  std::vector<std::pair<net::NodeId, net::Packet>> localDeliveries;

  explicit EngineRig(RoutingConfig cfg = {}) : config(cfg) {
    hooks.isRouter = [this] { return isRouter; };
    hooks.routerOf =
        [this](const geo::GridCoord& g) -> std::optional<net::NodeId> {
      for (auto& [grid, id] : knownRouters) {
        if (grid == g) return id;
      }
      return std::nullopt;
    };
    hooks.hostIsLocal = [this](net::NodeId h) {
      for (net::NodeId local : localHosts) {
        if (local == h) return true;
      }
      return false;
    };
    hooks.deliverLocal = [this](net::NodeId dst, const net::Packet& frame) {
      localDeliveries.emplace_back(dst, frame);
    };
    hooks.locationHint =
        [](net::NodeId) -> std::optional<geo::GridCoord> {
      return geo::GridCoord{4, 0};
    };
    engine = std::make_unique<RoutingEngine>(env, hooks, config);
  }

  net::Packet dataFrame(net::NodeId src, net::NodeId dst) {
    net::Packet frame;
    frame.macSrc = src;
    frame.macDst = env.id();
    frame.header = std::make_shared<DataHeader>(src, dst, 100, net::DataTag{});
    return frame;
  }

  net::Packet rreqFrame(net::NodeId src, net::NodeId dst,
                        geo::GridCoord senderGrid, geo::Vec2 senderPos,
                        std::uint32_t reqId = 1, int hop = 0) {
    net::Packet frame;
    frame.macSrc = 40;
    frame.macDst = net::kBroadcastId;
    frame.header = std::make_shared<RreqHeader>(
        src, 1, dst, 0, reqId, geo::GridRect::everywhere(), senderGrid,
        senderPos, hop);
    return frame;
  }
};

TEST(RoutingEngineUnit, LocalDestinationBypassesRouting) {
  EngineRig rig;
  net::Packet frame = rig.dataFrame(1, 77);
  rig.engine->routeData(frame, *frame.headerAs<DataHeader>());
  ASSERT_EQ(rig.localDeliveries.size(), 1u);
  EXPECT_EQ(rig.localDeliveries[0].first, 77);
  EXPECT_TRUE(rig.env.link_.sent.empty());
}

TEST(RoutingEngineUnit, NoRouteBuffersAndFloodsRreq) {
  EngineRig rig;
  net::Packet frame = rig.dataFrame(1, 99);
  rig.engine->routeData(frame, *frame.headerAs<DataHeader>());
  ASSERT_EQ(rig.env.link_.sent.size(), 1u);
  const auto* rreq = rig.env.link_.sent[0].headerAs<RreqHeader>();
  ASSERT_NE(rreq, nullptr);
  EXPECT_EQ(rreq->destination(), 99);
  EXPECT_EQ(rreq->source(), rig.env.id());
  EXPECT_TRUE(net::isBroadcast(rig.env.link_.sent[0].macDst));
  EXPECT_EQ(rig.engine->stats().discoveriesStarted, 1u);
}

TEST(RoutingEngineUnit, RrepInstallsRouteAndFlushesPending) {
  EngineRig rig;
  net::Packet frame = rig.dataFrame(rig.env.id(), 99);
  rig.engine->routeData(frame, *frame.headerAs<DataHeader>());
  rig.env.link_.sent.clear();

  // RREP arrives from the router of (2,0).
  net::Packet rrep;
  rrep.macSrc = 30;
  rrep.macDst = rig.env.id();
  rrep.header = std::make_shared<RrepHeader>(
      rig.env.id(), 99, 5, geo::GridCoord{4, 0}, geo::GridCoord{2, 0},
      geo::Vec2{250.0, 50.0}, 2);
  EXPECT_TRUE(rig.engine->onFrame(rrep));

  // The pending data left toward (2,0)'s router.
  ASSERT_EQ(rig.env.link_.sent.size(), 1u);
  EXPECT_EQ(rig.env.link_.sent[0].macDst, 30);
  EXPECT_NE(rig.env.link_.sent[0].headerAs<DataHeader>(), nullptr);
  // And the route is installed for the next packet.
  auto route = rig.engine->routes().lookup(99, rig.env.simulator().now());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->nextGrid, (geo::GridCoord{2, 0}));
  EXPECT_EQ(route->nextHop, 30);
}

TEST(RoutingEngineUnit, RreqForLocalHostAnswersWithRrep) {
  EngineRig rig;
  net::Packet rreq = rig.rreqFrame(5, 77, {0, 0}, {50.0, 50.0});
  rig.engine->onFrame(rreq);
  ASSERT_EQ(rig.env.link_.sent.size(), 1u);
  const auto* rrep = rig.env.link_.sent[0].headerAs<RrepHeader>();
  ASSERT_NE(rrep, nullptr);
  EXPECT_EQ(rrep->destination(), 77);
  EXPECT_EQ(rrep->destGrid(), rig.env.cell());
  // Unicast along the reverse pointer: to the router of (0,0).
  EXPECT_EQ(rig.env.link_.sent[0].macDst, 20);
}

TEST(RoutingEngineUnit, RreqForRemoteHostIsRelayedOnce) {
  EngineRig rig;
  net::Packet rreq = rig.rreqFrame(5, 99, {0, 0}, {50.0, 50.0}, 7);
  rig.engine->onFrame(rreq);
  ASSERT_EQ(rig.env.link_.sent.size(), 1u);
  const auto* relay = rig.env.link_.sent[0].headerAs<RreqHeader>();
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->hopCount(), 1);
  EXPECT_EQ(relay->senderGrid(), rig.env.cell());
  // The duplicate is suppressed.
  net::Packet dup = rig.rreqFrame(5, 99, {2, 0}, {250.0, 50.0}, 7);
  rig.engine->onFrame(dup);
  EXPECT_EQ(rig.env.link_.sent.size(), 1u);
}

TEST(RoutingEngineUnit, EdgeOfDiskRreqIsIgnored) {
  EngineRig rig;
  // The copy claims to come from 260 m away: past maxForwardDistance.
  net::Packet rreq = rig.rreqFrame(5, 99, {0, 0}, {-110.0, 50.0});
  rig.engine->onFrame(rreq);
  EXPECT_TRUE(rig.env.link_.sent.empty());
}

TEST(RoutingEngineUnit, NonRouterIgnoresRreqAndTransit) {
  EngineRig rig;
  rig.isRouter = false;
  rig.localHosts.clear();
  net::Packet rreq = rig.rreqFrame(5, 99, {0, 0}, {50.0, 50.0});
  rig.engine->onFrame(rreq);
  EXPECT_TRUE(rig.env.link_.sent.empty());
  net::Packet data = rig.dataFrame(1, 99);
  rig.engine->routeData(data, *data.headerAs<DataHeader>());
  EXPECT_TRUE(rig.env.link_.sent.empty());
  EXPECT_EQ(rig.engine->stats().dataDropped, 1u);
}

TEST(RoutingEngineUnit, DiscoveryTimeoutRetriesThenFails) {
  RoutingConfig config;
  config.rrepTimeout = 0.1;
  config.maxDiscoveryAttempts = 3;
  EngineRig rig(config);
  net::Packet frame = rig.dataFrame(rig.env.id(), 99);
  rig.engine->routeData(frame, *frame.headerAs<DataHeader>());
  rig.env.simulator_.run(1.0);
  EXPECT_EQ(rig.engine->stats().rreqsSent, 3u);
  EXPECT_EQ(rig.engine->stats().discoveriesFailed, 1u);
  EXPECT_EQ(rig.engine->stats().dataDropped, 1u);
}

TEST(RoutingEngineUnit, SearchRangeWidensPerAttempt) {
  RoutingConfig config;
  config.rrepTimeout = 0.1;
  config.maxDiscoveryAttempts = 3;
  config.rangeMargin = 1;
  EngineRig rig(config);
  net::Packet frame = rig.dataFrame(rig.env.id(), 99);
  rig.engine->routeData(frame, *frame.headerAs<DataHeader>());
  rig.env.simulator_.run(1.0);
  ASSERT_EQ(rig.env.link_.sent.size(), 3u);
  auto cells = [&](int i) {
    return rig.env.link_.sent[i].headerAs<RreqHeader>()->range().cellCount();
  };
  EXPECT_LT(cells(0), cells(1));
  EXPECT_LT(cells(1), cells(2));  // final attempt = everywhere
}

TEST(RoutingEngineUnit, FallbackHopUsedWhenRouterUnknown) {
  EngineRig rig;
  // Install a route whose grid has no known router but a nextHop hint.
  RouteEntry entry;
  entry.nextGrid = {3, 0};  // not in knownRouters
  entry.destGrid = {4, 0};
  entry.nextHop = 55;
  entry.destSeq = 1;
  rig.engine->routes().update(99, entry, 0.0);
  net::Packet frame = rig.dataFrame(1, 99);
  rig.engine->routeData(frame, *frame.headerAs<DataHeader>());
  ASSERT_EQ(rig.env.link_.sent.size(), 1u);
  EXPECT_EQ(rig.env.link_.sent[0].macDst, 55);
  EXPECT_EQ(rig.engine->stats().dataForwarded, 1u);
}

TEST(RoutingEngineUnit, RerrPurgesRouteAndPropagates) {
  EngineRig rig;
  // Reverse route toward source 5 via (0,0) from a prior RREQ.
  net::Packet rreq = rig.rreqFrame(5, 99, {0, 0}, {50.0, 50.0});
  rig.engine->onFrame(rreq);
  rig.env.link_.sent.clear();
  // Forward route to 99 exists…
  RouteEntry entry;
  entry.nextGrid = {2, 0};
  entry.destSeq = 3;
  rig.engine->routes().update(99, entry, 0.0);
  // …until an RERR for it arrives from downstream.
  net::Packet rerr;
  rerr.macSrc = 30;
  rerr.macDst = rig.env.id();
  rerr.header = std::make_shared<RerrHeader>(5, 99, 3, geo::GridCoord{2, 0});
  rig.engine->onFrame(rerr);
  EXPECT_FALSE(
      rig.engine->routes().lookup(99, rig.env.simulator().now()).has_value());
  // Propagated toward the source's grid router.
  ASSERT_EQ(rig.env.link_.sent.size(), 1u);
  EXPECT_NE(rig.env.link_.sent[0].headerAs<RerrHeader>(), nullptr);
  EXPECT_EQ(rig.env.link_.sent[0].macDst, 20);
}

TEST(RoutingEngineUnit, StopRoutingDropsPendingDiscoveries) {
  EngineRig rig;
  net::Packet frame = rig.dataFrame(rig.env.id(), 99);
  rig.engine->routeData(frame, *frame.headerAs<DataHeader>());
  rig.engine->stopRouting();
  EXPECT_EQ(rig.engine->stats().dataDropped, 1u);
  // The stale timeout must not fire a retry.
  std::uint64_t rreqsBefore = rig.engine->stats().rreqsSent;
  rig.env.simulator_.run(2.0);
  EXPECT_EQ(rig.engine->stats().rreqsSent, rreqsBefore);
}

TEST(RoutingEngineUnit, MayRelayHookBlocksRelayButNotReply) {
  EngineRig rig;
  bool relayAllowed = false;
  rig.hooks.mayRelayRreq = [&] { return relayAllowed; };
  rig.engine = std::make_unique<RoutingEngine>(rig.env, rig.hooks, rig.config);
  // Remote destination: relay blocked.
  net::Packet rreq = rig.rreqFrame(5, 99, {0, 0}, {50.0, 50.0}, 1);
  rig.engine->onFrame(rreq);
  EXPECT_TRUE(rig.env.link_.sent.empty());
  // Local destination: still answered.
  net::Packet rreq2 = rig.rreqFrame(5, 77, {0, 0}, {50.0, 50.0}, 2);
  rig.engine->onFrame(rreq2);
  EXPECT_EQ(rig.env.link_.sent.size(), 1u);
  EXPECT_NE(rig.env.link_.sent[0].headerAs<RrepHeader>(), nullptr);
}

}  // namespace
}  // namespace ecgrid::protocols
