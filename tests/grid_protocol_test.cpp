// Protocol-level tests for the GRID baseline: election outcomes,
// grid-by-grid delivery, gateway handover, and failure recovery.
#include <gtest/gtest.h>

#include "test_net.hpp"

namespace ecgrid::test {
namespace {

TEST(GridProtocol, ElectsClosestToCenter) {
  TestNet net;
  // All three in cell (0,0); centre is (50,50).
  net.addStatic(1, {10.0, 10.0});
  net.addStatic(2, {48.0, 52.0});  // closest
  net.addStatic(3, {80.0, 20.0});
  net.installGridEverywhere();
  net.start(3.0);
  EXPECT_EQ(net.gateways(), (std::vector<net::NodeId>{2}));
  EXPECT_EQ(net.gridProtocolOf(1).currentGateway(),
            std::optional<net::NodeId>(2));
  EXPECT_EQ(net.gridProtocolOf(3).currentGateway(),
            std::optional<net::NodeId>(2));
}

TEST(GridProtocol, LoneHostElectsItself) {
  TestNet net;
  net.addStatic(9, {450.0, 450.0});
  net.installGridEverywhere();
  net.start(3.0);
  EXPECT_EQ(net.gateways(), (std::vector<net::NodeId>{9}));
}

TEST(GridProtocol, OneGatewayPerOccupiedGrid) {
  TestNet net;
  for (int i = 0; i < 12; ++i) {
    net.addStatic(i, {50.0 + (i % 4) * 100.0, 50.0 + (i / 4) * 100.0});
  }
  net.installGridEverywhere();
  net.start(3.0);
  EXPECT_EQ(net.gateways().size(), 12u);  // one host per grid, all gateways
}

TEST(GridProtocol, DeliversWithinOneGrid) {
  TestNet net;
  net.addStatic(1, {20.0, 50.0});
  net.addStatic(2, {50.0, 50.0});
  net.addStatic(3, {80.0, 50.0});
  net.installGridEverywhere();
  int delivered = 0;
  net.network.findNode(3)->setAppReceiveCallback(
      [&](net::NodeId src, const net::DataTag&, int bytes) {
        EXPECT_EQ(src, 1);
        EXPECT_EQ(bytes, 256);
        ++delivered;
      });
  net.start(3.0);
  net.network.findNode(1)->sendFromApp(3, 256, {});
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(delivered, 1);
}

TEST(GridProtocol, DeliversAcrossAChainOfGrids) {
  TestNet net;
  // A 6-grid chain; one host per grid near each centre.
  for (int i = 0; i < 6; ++i) {
    net.addStatic(i, {50.0 + i * 100.0, 50.0});
  }
  net.installGridEverywhere();
  int delivered = 0;
  net.network.findNode(5)->setAppReceiveCallback(
      [&](net::NodeId src, const net::DataTag&, int) {
        EXPECT_EQ(src, 0);
        ++delivered;
      });
  net.start(3.0);
  for (int k = 0; k < 5; ++k) {
    net::DataTag tag;
    tag.sequence = static_cast<std::uint64_t>(k);
    tag.sentAt = net.simulator.now();
    net.network.findNode(0)->sendFromApp(5, 512, tag);
    net.simulator.run(net.simulator.now() + 0.5);
  }
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(delivered, 5);
}

TEST(GridProtocol, RoutesAroundAnEmptyGridColumn) {
  TestNet net;
  // Hosts at x = 50, 150, (gap at 250), 350 would be disconnected at grid
  // granularity, but radio range 250 m bridges the hole.
  net.addStatic(0, {50.0, 50.0});
  net.addStatic(1, {150.0, 50.0});
  net.addStatic(2, {350.0, 50.0});
  net.addStatic(3, {450.0, 50.0});
  net.installGridEverywhere();
  int delivered = 0;
  net.network.findNode(3)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  net.start(3.0);
  net.network.findNode(0)->sendFromApp(3, 128, {});
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(delivered, 1);
}

TEST(GridProtocol, GatewayHandoverOnDeparture) {
  TestNet net;
  // Node 1 starts as the obvious gateway (dead centre) but walks away at
  // t=10; node 2 must inherit and traffic must keep flowing.
  net.addScripted(1, {{0.0, {50.0, 50.0}, {0.0, 0.0}},
                      {10.0, {50.0, 50.0}, {20.0, 0.0}},
                      {20.0, {250.0, 50.0}, {0.0, 0.0}}});
  net.addStatic(2, {40.0, 40.0});
  net.addStatic(3, {60.0, 70.0});
  net.installGridEverywhere();
  net.start(3.0);
  EXPECT_EQ(net.gateways(), (std::vector<net::NodeId>{1}));
  net.simulator.run(20.0);
  // Node 1 left cell (0,0); node 2 (closer to centre than 3) takes over.
  auto gws = net.gateways();
  ASSERT_FALSE(gws.empty());
  EXPECT_TRUE(net.gridProtocolOf(2).isGateway() ||
              net.gridProtocolOf(3).isGateway());
  EXPECT_TRUE(net.gridProtocolOf(2).isGateway());
}

TEST(GridProtocol, RecoversFromGatewayDeath) {
  TestNet net;
  // The centre-most node has a tiny battery and dies without a RETIRE;
  // the no-gateway watchdog must elect a replacement.
  net.addStatic(1, {50.0, 50.0}, /*batteryJ=*/10.0);  // dies at ~11.6 s
  net.addStatic(2, {30.0, 30.0});
  net.addStatic(3, {70.0, 70.0});
  net.installGridEverywhere();
  net.start(3.0);
  EXPECT_EQ(net.gateways(), (std::vector<net::NodeId>{1}));
  net.simulator.run(25.0);
  EXPECT_FALSE(net.network.findNode(1)->alive());
  auto gws = net.gateways();
  ASSERT_EQ(gws.size(), 1u);
  EXPECT_NE(gws[0], 1);
}

TEST(GridProtocol, GridHostsNeverSleep) {
  TestNet net;
  for (int i = 0; i < 6; ++i) {
    net.addStatic(i, {20.0 + i * 10.0, 50.0});
  }
  net.installGridEverywhere();
  net.start(10.0);
  for (auto& node : net.network.nodes()) {
    EXPECT_FALSE(node->radio().sleeping());
  }
}

TEST(GridProtocol, MemberLeaveUpdatesHostTable) {
  TestNet net;
  // Member 2 walks to the next grid; data addressed to it must follow.
  net.addStatic(1, {50.0, 50.0});
  net.addScripted(2, {{0.0, {30.0, 50.0}, {0.0, 0.0}},
                      {5.0, {30.0, 50.0}, {10.0, 0.0}},
                      {18.0, {160.0, 50.0}, {0.0, 0.0}}});
  net.addStatic(3, {150.0, 50.0});
  net.addStatic(4, {250.0, 50.0});
  net.installGridEverywhere();
  int delivered = 0;
  net.network.findNode(2)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  net.start(3.0);
  net.network.findNode(4)->sendFromApp(2, 64, {});
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(delivered, 1);
  // After the move (node 2 now lives in cell (1,0)):
  net.simulator.run(25.0);
  net.network.findNode(4)->sendFromApp(2, 64, {});
  net.simulator.run(net.simulator.now() + 3.0);
  EXPECT_EQ(delivered, 2);
}

}  // namespace
}  // namespace ecgrid::test
