// Tests for the CSMA MAC: ACK'd unicast, ARQ retransmission, duplicate
// suppression, broadcast fire-and-forget, queueing, and failure feedback.
#include <gtest/gtest.h>

#include <memory>

#include "mac/csma.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::mac {
namespace {

class StubHeader final : public net::Header {
 public:
  explicit StubHeader(int bytes = 66) : bytes_(bytes) {}
  int bytes() const override { return bytes_; }
  const char* name() const override { return "STUB"; }

 private:
  int bytes_;
};

net::Packet makeFrame(net::NodeId src, net::NodeId dst) {
  net::Packet frame;
  frame.macSrc = src;
  frame.macDst = dst;
  frame.header = std::make_shared<StubHeader>();
  return frame;
}

/// Two MAC-equipped nodes `distance` apart.
struct Rig {
  sim::Simulator simulator;
  phy::Channel channel{simulator, phy::ChannelConfig{}};
  energy::Battery batteryA{500.0};
  energy::Battery batteryB{500.0};
  phy::Radio radioA{simulator, batteryA, energy::PowerProfile{}, 0};
  phy::Radio radioB{simulator, batteryB, energy::PowerProfile{}, 1};
  std::unique_ptr<CsmaMac> macA;
  std::unique_ptr<CsmaMac> macB;

  explicit Rig(double distance = 100.0) {
    radioA.attachChannel(&channel);
    radioB.attachChannel(&channel);
    channel.attach(&radioA, [] { return geo::Vec2{0.0, 0.0}; });
    channel.attach(&radioB, [distance] { return geo::Vec2{distance, 0.0}; });
    macA = std::make_unique<CsmaMac>(simulator, radioA, channel, CsmaConfig{},
                                     simulator.rng().stream("macA"));
    macB = std::make_unique<CsmaMac>(simulator, radioB, channel, CsmaConfig{},
                                     simulator.rng().stream("macB"));
  }
};

TEST(CsmaMac, UnicastDeliversAndAcks) {
  Rig rig;
  int received = 0;
  rig.macB->setReceiveCallback([&](const net::Packet&) { ++received; });
  rig.macA->send(makeFrame(0, 1));
  rig.simulator.run(1.0);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(rig.macA->framesSent(), 1u);
  EXPECT_EQ(rig.macA->framesDropped(), 0u);
  EXPECT_EQ(rig.macB->acksSent(), 1u);
  EXPECT_EQ(rig.macA->retransmissions(), 0u);
}

TEST(CsmaMac, BroadcastIsFireAndForget) {
  Rig rig;
  int received = 0;
  rig.macB->setReceiveCallback([&](const net::Packet&) { ++received; });
  rig.macA->send(makeFrame(0, net::kBroadcastId));
  rig.simulator.run(1.0);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(rig.macB->acksSent(), 0u);  // broadcasts are not acknowledged
}

TEST(CsmaMac, RetriesUntilReceiverWakes) {
  Rig rig;
  int received = 0;
  rig.macB->setReceiveCallback([&](const net::Packet&) { ++received; });
  rig.radioB.sleep();
  rig.simulator.schedule(4e-3, [&] { rig.radioB.wake(); });
  rig.macA->send(makeFrame(0, 1));
  rig.simulator.run(1.0);
  EXPECT_EQ(received, 1);  // ARQ rode out the nap
  EXPECT_GT(rig.macA->retransmissions(), 0u);
}

TEST(CsmaMac, GivesUpAfterRetryLimitAndReportsFailure) {
  Rig rig(300.0);  // out of range: every attempt is lost
  int failures = 0;
  net::Packet failed;
  rig.macA->setSendFailureCallback([&](const net::Packet& p) {
    ++failures;
    failed = p;
  });
  rig.macA->send(makeFrame(0, 1));
  rig.simulator.run(5.0);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(failed.macDst, 1);
  EXPECT_EQ(rig.macA->framesDropped(), 1u);
  EXPECT_EQ(rig.macA->framesSent(), 0u);
}

TEST(CsmaMac, BroadcastFailuresAreNotReported) {
  Rig rig(300.0);
  int failures = 0;
  rig.macA->setSendFailureCallback([&](const net::Packet&) { ++failures; });
  rig.macA->send(makeFrame(0, net::kBroadcastId));
  rig.simulator.run(5.0);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(rig.macA->framesSent(), 1u);  // broadcast "succeeds" locally
}

TEST(CsmaMac, DuplicatesFromRetransmissionAreSuppressed) {
  // Force a lost ACK by making B mute its ACKs... simplest equivalent: B
  // receives, but we check that even when A retransmits (due to induced
  // ACK loss via a brief sleep *after* reception), B delivers once.
  Rig rig;
  int received = 0;
  rig.macB->setReceiveCallback([&](const net::Packet&) {
    ++received;
    // Kill the ACK path once: sleeping right after reception suppresses
    // the first ACK, so A retransmits the same macSeq.
    if (received == 1) {
      rig.radioB.sleep();
      rig.simulator.schedule(3e-3, [&] { rig.radioB.wake(); });
    }
  });
  rig.macA->send(makeFrame(0, 1));
  rig.simulator.run(1.0);
  EXPECT_EQ(received, 1);
  EXPECT_GT(rig.macA->retransmissions(), 0u);
  EXPECT_EQ(rig.macA->framesSent(), 1u);  // eventually acked
}

TEST(CsmaMac, QueueDrainsInOrder) {
  Rig rig;
  std::vector<std::uint64_t> seqs;
  rig.macB->setReceiveCallback(
      [&](const net::Packet& p) { seqs.push_back(p.macSeq); });
  for (int i = 0; i < 5; ++i) rig.macA->send(makeFrame(0, 1));
  rig.simulator.run(2.0);
  ASSERT_EQ(seqs.size(), 5u);
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_LT(seqs[i - 1], seqs[i]);
  }
}

TEST(CsmaMac, QueueOverflowDropsTail) {
  Rig rig;
  CsmaConfig smallQueue;
  smallQueue.queueLimit = 2;
  CsmaMac mac(rig.simulator, rig.radioA, rig.channel, smallQueue,
              rig.simulator.rng().stream("small"));
  for (int i = 0; i < 5; ++i) mac.send(makeFrame(0, 1));
  EXPECT_EQ(mac.queueDepth(), 2u);
  EXPECT_EQ(mac.framesDropped(), 3u);
}

TEST(CsmaMac, ClearQueueDropsEverything) {
  Rig rig;
  for (int i = 0; i < 3; ++i) rig.macA->send(makeFrame(0, 1));
  rig.macA->clearQueue();
  EXPECT_EQ(rig.macA->queueDepth(), 0u);
  int received = 0;
  rig.macB->setReceiveCallback([&](const net::Packet&) { ++received; });
  rig.simulator.run(1.0);
  EXPECT_EQ(received, 0);
}

TEST(CsmaMac, SendWhileSleepingIsDropped) {
  Rig rig;
  rig.radioA.sleep();
  rig.macA->send(makeFrame(0, 1));
  EXPECT_EQ(rig.macA->framesDropped(), 1u);
  EXPECT_EQ(rig.macA->queueDepth(), 0u);
}

TEST(CsmaMac, CarrierSenseDefersConcurrentSenders) {
  // Three nodes in mutual range; two flood unicasts at the third
  // simultaneously. Carrier sense + ARQ should deliver everything.
  sim::Simulator simulator;
  phy::Channel channel(simulator, phy::ChannelConfig{});
  energy::Battery b0(500.0), b1(500.0), b2(500.0);
  phy::Radio r0(simulator, b0, energy::PowerProfile{}, 0);
  phy::Radio r1(simulator, b1, energy::PowerProfile{}, 1);
  phy::Radio r2(simulator, b2, energy::PowerProfile{}, 2);
  for (phy::Radio* r : {&r0, &r1, &r2}) r->attachChannel(&channel);
  channel.attach(&r0, [] { return geo::Vec2{0.0, 0.0}; });
  channel.attach(&r1, [] { return geo::Vec2{100.0, 0.0}; });
  channel.attach(&r2, [] { return geo::Vec2{50.0, 80.0}; });
  CsmaMac m0(simulator, r0, channel, CsmaConfig{},
             simulator.rng().stream("m0"));
  CsmaMac m1(simulator, r1, channel, CsmaConfig{},
             simulator.rng().stream("m1"));
  CsmaMac m2(simulator, r2, channel, CsmaConfig{},
             simulator.rng().stream("m2"));
  int received = 0;
  m2.setReceiveCallback([&](const net::Packet&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    m0.send(makeFrame(0, 2));
    m1.send(makeFrame(1, 2));
  }
  simulator.run(5.0);
  // Carrier sense + ARQ recover nearly everything; an occasional frame
  // can exhaust its retries when both senders keep colliding.
  EXPECT_GE(received, 18);
}

}  // namespace
}  // namespace ecgrid::mac
