// Unit tests for the blind-flooding oracle protocol.
#include "protocols/flooding/flooding_protocol.hpp"

#include <gtest/gtest.h>

#include "test_net.hpp"

namespace ecgrid::test {
namespace {

protocols::FloodingProtocol& floodOf(TestNet& net, net::NodeId id) {
  auto* proto = dynamic_cast<protocols::FloodingProtocol*>(
      &net.network.findNode(id)->protocol());
  EXPECT_NE(proto, nullptr);
  return *proto;
}

void installFlood(net::Node& node, protocols::FloodingConfig config = {}) {
  node.setProtocol(
      std::make_unique<protocols::FloodingProtocol>(node, config));
}

struct Delivery {
  int count = 0;
  net::NodeId lastSrc = net::kBroadcastId;
  int lastBytes = 0;
};

Delivery& watchDeliveries(TestNet& net, net::NodeId id) {
  auto delivered = std::make_shared<Delivery>();
  net.network.findNode(id)->setAppReceiveCallback(
      [delivered](net::NodeId src, const net::DataTag&, int bytes) {
        ++delivered->count;
        delivered->lastSrc = src;
        delivered->lastBytes = bytes;
      });
  // The callback owns the state; keep one reference alive via the node's
  // lambda and hand the caller a stable alias.
  return *delivered;
}

TEST(Flooding, DeliversAcrossMultiHopChain) {
  // 1 --200m-- 2 --200m-- 3: the ends are out of direct radio range
  // (250 m), so delivery proves the middle host rebroadcast.
  TestNet net;
  net.addStatic(1, {0.0, 50.0});
  net.addStatic(2, {200.0, 50.0});
  net.addStatic(3, {400.0, 50.0});
  for (auto& node : net.network.nodes()) installFlood(*node);
  Delivery& atDest = watchDeliveries(net, 3);
  net.start(0.5);

  net.network.findNode(1)->sendFromApp(3, 64, net::DataTag{7, 1, 0.5});
  net.simulator.run(2.0);

  EXPECT_EQ(atDest.count, 1);
  EXPECT_EQ(atDest.lastSrc, 1);
  EXPECT_EQ(atDest.lastBytes, 64);
  EXPECT_GE(floodOf(net, 2).rebroadcasts(), 1u);
}

TEST(Flooding, SuppressesDuplicatesAndDoesNotForwardAtDestination) {
  // Three mutually in-range hosts: the bystander hears the origin copy
  // and must forward exactly once; the destination never forwards.
  TestNet net;
  net.addStatic(1, {0.0, 0.0});
  net.addStatic(2, {50.0, 0.0});
  net.addStatic(3, {0.0, 50.0});
  for (auto& node : net.network.nodes()) installFlood(*node);
  Delivery& atDest = watchDeliveries(net, 2);
  net.start(0.5);

  net.network.findNode(1)->sendFromApp(2, 32, net::DataTag{1, 1, 0.5});
  net.simulator.run(2.0);

  EXPECT_EQ(atDest.count, 1);
  EXPECT_EQ(floodOf(net, 2).rebroadcasts(), 0u);
  EXPECT_EQ(floodOf(net, 3).rebroadcasts(), 1u);
}

TEST(Flooding, TtlBoundsPropagation) {
  // With ttl = 1 the origin's broadcast is the only transmission: the
  // relay must drop it instead of forwarding, so the far host starves.
  TestNet net;
  protocols::FloodingConfig config;
  config.ttl = 1;
  net.addStatic(1, {0.0, 50.0});
  net.addStatic(2, {200.0, 50.0});
  net.addStatic(3, {400.0, 50.0});
  for (auto& node : net.network.nodes()) installFlood(*node, config);
  Delivery& atDest = watchDeliveries(net, 3);
  net.start(0.5);

  net.network.findNode(1)->sendFromApp(3, 64, net::DataTag{2, 1, 0.5});
  net.simulator.run(2.0);

  EXPECT_EQ(atDest.count, 0);
  EXPECT_EQ(floodOf(net, 2).rebroadcasts(), 0u);
}

TEST(Flooding, SelfAddressedDataShortCircuitsTheRadio) {
  TestNet net;
  net.addStatic(1, {0.0, 0.0});
  installFlood(*net.network.nodes().front());
  Delivery& atSelf = watchDeliveries(net, 1);
  net.start(0.1);

  net.network.findNode(1)->sendFromApp(1, 16, net::DataTag{3, 1, 0.1});
  net.simulator.run(0.5);

  EXPECT_EQ(atSelf.count, 1);
  EXPECT_EQ(atSelf.lastSrc, 1);
  EXPECT_EQ(floodOf(net, 1).rebroadcasts(), 0u);
}

TEST(Flooding, ShutdownSilencesSendAndForward) {
  TestNet net;
  net.addStatic(1, {0.0, 0.0});
  net.addStatic(2, {50.0, 0.0});
  for (auto& node : net.network.nodes()) installFlood(*node);
  Delivery& atDest = watchDeliveries(net, 2);
  net.start(0.5);

  floodOf(net, 1).onShutdown();
  net.network.findNode(1)->sendFromApp(2, 32, net::DataTag{4, 1, 0.5});
  net.simulator.run(2.0);

  EXPECT_EQ(atDest.count, 0);
}

TEST(Flooding, IgnoresPagingAndCellEvents) {
  // The oracle keeps every host awake, so paging and grid-crossing
  // notifications must be inert no-ops.
  TestNet net;
  net.addStatic(1, {0.0, 0.0});
  installFlood(*net.network.nodes().front());
  net.start(0.1);
  auto& proto = floodOf(net, 1);
  proto.onPaged(net::PageSignal{});
  proto.onCellChanged(geo::GridCoord{0, 0}, geo::GridCoord{1, 0});
  EXPECT_STREQ(proto.name(), "FLOOD");
  EXPECT_EQ(proto.rebroadcasts(), 0u);
}

TEST(Flooding, HeaderExposesFloodBookkeeping) {
  protocols::DataHeader data(5, 9, 100, net::DataTag{11, 3, 1.0});
  protocols::FloodHeader header(5, 42, 7, data);
  EXPECT_EQ(header.origin(), 5);
  EXPECT_EQ(header.floodSeq(), 42u);
  EXPECT_EQ(header.ttl(), 7);
  EXPECT_EQ(header.data().appDst(), 9);
  EXPECT_EQ(header.bytes(), 12 + data.bytes());
  EXPECT_STREQ(header.name(), "FLOOD");
}

}  // namespace
}  // namespace ecgrid::test
