// Allocation-audit gate (src/check/alloc_audit, DESIGN.md §16).
//
// The phase/counter API is exercised in every build; the tests that need
// real allocation interception GTEST_SKIP() unless the binary was built
// with ECGRID_ALLOC_AUDIT (the `alloc-audit` preset), whose CI job runs
// this file with the counting operator new installed. The headline
// claims gated here:
//
//   * paper-baseline GRID / ECGRID / GAF scenarios execute their steady
//     phase with ZERO allocations inside hot scopes (event queue slabs,
//     schedule packing, channel fan-out are allocation-free once warm);
//   * the gate is live, not vacuous — an injected steady-state hot
//     allocation (the canary) trips it.
#include <gtest/gtest.h>

#include <stdexcept>

#include "check/alloc_audit.hpp"
#include "harness/scenario.hpp"
#include "util/hot_path.hpp"

namespace ecgrid::harness {
namespace {

// One guaranteed trip through the global allocation functions. A plain
// `delete new int` is elidable under C++14 allocation-elision rules (and
// GCC does elide it at -O2), which would make the counter tests vacuous;
// direct calls to the allocation functions are not elidable.
void countedAllocation() { ::operator delete(::operator new(16)); }

ScenarioConfig auditBase() {
  ScenarioConfig config;  // paper §4 defaults: 100 hosts, 10 CBR flows
  config.duration = 240.0;
  config.allocAuditWarmup = 60.0;
  config.allocAuditGate = true;
  config.seed = 11;
  return config;
}

TEST(AllocAudit, PhaseRoundTripsInEveryBuild) {
  check::allocAuditReset();
  EXPECT_EQ(check::allocAuditPhase(), check::AllocPhase::kSetup);
  check::allocAuditSetPhase(check::AllocPhase::kWarmup);
  EXPECT_EQ(check::allocAuditPhase(), check::AllocPhase::kWarmup);
  check::allocAuditSetPhase(check::AllocPhase::kSteady);
  EXPECT_EQ(check::allocAuditPhase(), check::AllocPhase::kSteady);
  check::allocAuditReset();
  EXPECT_EQ(check::allocAuditPhase(), check::AllocPhase::kSetup);
  // Without the audit build the counters stay flat no matter what runs.
  if (!check::allocAuditCompiled()) {
    countedAllocation();  // would be counted if interception were live
    const check::AllocAuditCounts counts =
        check::allocAuditCounts(check::AllocPhase::kSetup);
    EXPECT_EQ(counts.allocations, 0u);
    EXPECT_EQ(counts.hotAllocations, 0u);
  }
}

TEST(AllocAudit, CountsAttributeToCurrentPhase) {
  if (!check::allocAuditCompiled()) GTEST_SKIP() << "needs alloc-audit build";
  check::allocAuditReset();

  check::allocAuditSetPhase(check::AllocPhase::kWarmup);
  const check::AllocAuditCounts warmup0 =
      check::allocAuditCounts(check::AllocPhase::kWarmup);
  countedAllocation();
  const check::AllocAuditCounts warmup1 =
      check::allocAuditCounts(check::AllocPhase::kWarmup);

  check::allocAuditSetPhase(check::AllocPhase::kSteady);
  const check::AllocAuditCounts steady0 =
      check::allocAuditCounts(check::AllocPhase::kSteady);
  countedAllocation();
  const check::AllocAuditCounts steady1 =
      check::allocAuditCounts(check::AllocPhase::kSteady);

  EXPECT_EQ(warmup1.allocations, warmup0.allocations + 1);
  EXPECT_EQ(warmup1.deallocations, warmup0.deallocations + 1);
  EXPECT_GE(warmup1.bytes, warmup0.bytes + 16);
  EXPECT_EQ(steady1.allocations, steady0.allocations + 1);
  // Phases are independent cells: the steady delete did not move warmup.
  const check::AllocAuditCounts warmup2 =
      check::allocAuditCounts(check::AllocPhase::kWarmup);
  EXPECT_EQ(warmup2.allocations, warmup1.allocations);
  check::allocAuditReset();
}

TEST(AllocAudit, HotScopeAttributionAndExemption) {
  if (!check::allocAuditCompiled()) GTEST_SKIP() << "needs alloc-audit build";
  check::allocAuditReset();
  check::allocAuditSetPhase(check::AllocPhase::kSteady);

  const check::AllocAuditCounts before =
      check::allocAuditCounts(check::AllocPhase::kSteady);
  countedAllocation();  // cold: counted, but not hot
  {
    util::HotPathScope hot;
    countedAllocation();  // hot
    {
      check::AllocExemptScope exempt;
      countedAllocation();  // hot scope open, but explicitly exempted
    }
    countedAllocation();  // hot again once the exemption closes
  }
  const check::AllocAuditCounts after =
      check::allocAuditCounts(check::AllocPhase::kSteady);

  EXPECT_EQ(after.allocations, before.allocations + 4);
  EXPECT_EQ(after.hotAllocations, before.hotAllocations + 2);
  check::allocAuditReset();
}

// The paper-baseline steady-state contract: once the warmup phase has
// grown the slabs and tables to their high-water marks, event dispatch
// for every protocol runs allocation-free inside hot scopes — with the
// gate armed, so a violation aborts the run instead of passing silently.
class AllocAuditSteadyState : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AllocAuditSteadyState, ZeroHotAllocationsAfterWarmup) {
  if (!check::allocAuditCompiled()) GTEST_SKIP() << "needs alloc-audit build";
  ScenarioConfig config = auditBase();
  config.protocol = GetParam();
  ScenarioResult result = runScenario(config);  // gate armed: throws on hit
  EXPECT_TRUE(result.allocAudit.enabled);
  EXPECT_GT(result.allocAudit.setupAllocations, 0u);
  EXPECT_GT(result.allocAudit.warmupAllocations, 0u);
  EXPECT_EQ(result.allocAudit.steadyHotAllocations, 0u);
  // Cold allocations (protocol wire objects, table entries) are expected
  // and legitimate in steady state — the contract is about hot scopes.
  EXPECT_GT(result.allocAudit.steadyAllocations, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, AllocAuditSteadyState,
                         ::testing::Values(ProtocolKind::kGrid,
                                           ProtocolKind::kEcgrid,
                                           ProtocolKind::kGaf));

TEST(AllocAudit, CanaryTripsTheGate) {
  if (!check::allocAuditCompiled()) GTEST_SKIP() << "needs alloc-audit build";
  ScenarioConfig config = auditBase();
  config.hostCount = 40;
  config.duration = 90.0;
  config.allocAuditWarmup = 30.0;
  config.allocAuditInjectCanary = true;
  EXPECT_THROW(runScenario(config), std::logic_error);
}

TEST(AllocAudit, CanaryWithoutGateOnlyReports) {
  if (!check::allocAuditCompiled()) GTEST_SKIP() << "needs alloc-audit build";
  ScenarioConfig config = auditBase();
  config.hostCount = 40;
  config.duration = 90.0;
  config.allocAuditWarmup = 30.0;
  config.allocAuditInjectCanary = true;
  config.allocAuditGate = false;
  ScenarioResult result = runScenario(config);
  EXPECT_GE(result.allocAudit.steadyHotAllocations, 1u);
}

TEST(AllocAudit, NestedScenarioRunsResetThePhase) {
  if (!check::allocAuditCompiled()) GTEST_SKIP() << "needs alloc-audit build";
  ScenarioConfig config = auditBase();
  config.hostCount = 40;
  config.duration = 90.0;
  config.allocAuditWarmup = 30.0;
  ScenarioResult first = runScenario(config);
  // The first run ends with the thread in kSteady; a second run must
  // re-attribute its construction work to kSetup, not inherit the phase.
  ScenarioResult second = runScenario(config);
  EXPECT_GT(second.allocAudit.setupAllocations, 0u);
  EXPECT_EQ(second.allocAudit.setupAllocations,
            first.allocAudit.setupAllocations);
  EXPECT_EQ(second.allocAudit.steadyHotAllocations, 0u);
}

}  // namespace
}  // namespace ecgrid::harness
