// Unit and property tests for geometry: vectors, grid mapping, the paper's
// d = √2·r/3 dimensioning rule, exit-time computation, search rectangles.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/grid.hpp"
#include "geo/rect.hpp"
#include "geo/vec2.hpp"
#include "sim/rng.hpp"

namespace ecgrid::geo {
namespace {

TEST(Vec2, Arithmetic) {
  Vec2 a{1.0, 2.0};
  Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
}

TEST(Vec2, LengthAndDistance) {
  Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.length(), 5.0);
  EXPECT_DOUBLE_EQ(v.lengthSquared(), 25.0);
  EXPECT_DOUBLE_EQ((Vec2{0, 0}).distanceTo(v), 5.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ((Vec2{}).normalized(), (Vec2{}));
  Vec2 unit = Vec2{0.0, -7.0}.normalized();
  EXPECT_DOUBLE_EQ(unit.x, 0.0);
  EXPECT_DOUBLE_EQ(unit.y, -1.0);
}

TEST(GridCoord, NeighbourRelation) {
  GridCoord center{5, 5};
  EXPECT_TRUE((GridCoord{4, 4}).isNeighbourOf(center));
  EXPECT_TRUE((GridCoord{5, 6}).isNeighbourOf(center));
  EXPECT_FALSE((GridCoord{5, 5}).isNeighbourOf(center));  // self
  EXPECT_FALSE((GridCoord{7, 5}).isNeighbourOf(center));
  EXPECT_EQ(center.chebyshevTo({8, 3}), 3);
}

TEST(GridMap, MapsPositionsToCells) {
  GridMap grid(100.0);
  EXPECT_EQ(grid.cellOf({0.0, 0.0}), (GridCoord{0, 0}));
  EXPECT_EQ(grid.cellOf({99.999, 99.999}), (GridCoord{0, 0}));
  EXPECT_EQ(grid.cellOf({100.0, 0.0}), (GridCoord{1, 0}));  // boundary → upper
  EXPECT_EQ(grid.cellOf({250.0, 420.0}), (GridCoord{2, 4}));
  EXPECT_EQ(grid.cellOf({-0.5, 3.0}), (GridCoord{-1, 0}));
}

TEST(GridMap, CenterAndOrigin) {
  GridMap grid(100.0);
  EXPECT_EQ(grid.centerOf({2, 3}), (Vec2{250.0, 350.0}));
  EXPECT_EQ(grid.originOf({2, 3}), (Vec2{200.0, 300.0}));
  EXPECT_DOUBLE_EQ(grid.distanceToOwnCenter({250.0, 350.0}), 0.0);
  EXPECT_NEAR(grid.distanceToOwnCenter({200.0, 300.0}), std::sqrt(2.0) * 50.0,
              1e-9);
}

TEST(GridMap, RejectsNonPositiveCellSide) {
  EXPECT_THROW(GridMap(0.0), std::invalid_argument);
  EXPECT_THROW(GridMap(-5.0), std::invalid_argument);
}

TEST(GridMap, TimeToExitCellStraightLine) {
  GridMap grid(100.0);
  // Moving right at 10 m/s from x=30: wall at x=100 → 7 s.
  EXPECT_DOUBLE_EQ(grid.timeToExitCell({30.0, 50.0}, {10.0, 0.0}), 7.0);
  // Moving down at 5 m/s from y=20: wall at y=0 → 4 s.
  EXPECT_DOUBLE_EQ(grid.timeToExitCell({30.0, 20.0}, {0.0, -5.0}), 4.0);
  // Diagonal: whichever wall comes first.
  EXPECT_DOUBLE_EQ(grid.timeToExitCell({90.0, 50.0}, {10.0, 10.0}), 1.0);
}

TEST(GridMap, TimeToExitCellStationary) {
  GridMap grid(100.0);
  EXPECT_TRUE(std::isinf(grid.timeToExitCell({30.0, 50.0}, {0.0, 0.0})));
}

// The paper's dimensioning rule: with d = √2·r/3, a gateway at the grid
// centre reaches any point of its eight neighbouring cells. Property-check
// over a sweep of radio ranges and sampled neighbour positions.
class CellSideRule : public ::testing::TestWithParam<double> {};

TEST_P(CellSideRule, CenterGatewayCoversAllEightNeighbours) {
  double range = GetParam();
  double d = maxCellSideForRange(range);
  EXPECT_NEAR(d, std::sqrt(2.0) * range / 3.0, 1e-12);

  GridMap grid(d);
  Vec2 center = grid.centerOf({0, 0});
  sim::RngStream rng(17);
  for (int n = 0; n < 2000; ++n) {
    GridCoord neighbour{static_cast<std::int32_t>(rng.uniformInt(-1, 1)),
                        static_cast<std::int32_t>(rng.uniformInt(-1, 1))};
    Vec2 origin = grid.originOf(neighbour);
    Vec2 point{origin.x + rng.uniform(0.0, d), origin.y + rng.uniform(0.0, d)};
    EXPECT_LE(center.distanceTo(point), range + 1e-9)
        << "range " << range << " cell " << d << " point " << point;
  }
  // And the rule is tight: a slightly larger cell side leaves corners of
  // the diagonal neighbours out of reach.
  GridMap tooBig(d * 1.05);
  Vec2 worst = tooBig.originOf({2, 2});  // far corner of neighbour (1,1)
  EXPECT_GT(tooBig.centerOf({0, 0}).distanceTo(worst), range);
}

INSTANTIATE_TEST_SUITE_P(Ranges, CellSideRule,
                         ::testing::Values(50.0, 100.0, 250.0, 500.0));

TEST(GridRect, CoveringAndContains) {
  GridRect rect = GridRect::covering({5, 1}, {1, 3});
  EXPECT_EQ(rect.lo, (GridCoord{1, 1}));
  EXPECT_EQ(rect.hi, (GridCoord{5, 3}));
  EXPECT_TRUE(rect.contains({3, 2}));
  EXPECT_TRUE(rect.contains({1, 1}));
  EXPECT_TRUE(rect.contains({5, 3}));
  EXPECT_FALSE(rect.contains({0, 2}));
  EXPECT_FALSE(rect.contains({3, 4}));
  EXPECT_EQ(rect.cellCount(), 15);
}

TEST(GridRect, ExpandedGrowsEverySide) {
  GridRect rect = GridRect::covering({2, 2}, {3, 3}).expanded(1);
  EXPECT_TRUE(rect.contains({1, 1}));
  EXPECT_TRUE(rect.contains({4, 4}));
  EXPECT_FALSE(rect.contains({0, 0}));
}

TEST(GridRect, EverywhereContainsEverything) {
  GridRect all = GridRect::everywhere();
  EXPECT_TRUE(all.contains({1000000, -1000000}));
  EXPECT_TRUE(all.contains({0, 0}));
}

}  // namespace
}  // namespace ecgrid::geo
