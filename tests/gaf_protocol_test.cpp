// Protocol-level tests for the GAF baseline, including the paper's core
// qualitative claim: GAF cannot wake a sleeping destination, ECGRID can.
#include <gtest/gtest.h>

#include "test_net.hpp"

namespace ecgrid::test {
namespace {

using GafState = protocols::GafProtocol::State;

protocols::GafProtocol& gafOf(TestNet& net, net::NodeId id) {
  auto* proto = dynamic_cast<protocols::GafProtocol*>(
      &net.network.findNode(id)->protocol());
  EXPECT_NE(proto, nullptr);
  return *proto;
}

TEST(Gaf, OneLeaderPerGridOthersSleep) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {30.0, 30.0});
  net.addStatic(3, {70.0, 60.0});
  for (auto& node : net.network.nodes()) net.installGaf(*node);
  net.start(4.0);
  int leaders = 0;
  int sleepers = 0;
  for (net::NodeId id : {1, 2, 3}) {
    if (gafOf(net, id).isLeader()) ++leaders;
    if (gafOf(net, id).state() == GafState::kSleep) ++sleepers;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(sleepers, 2);
}

TEST(Gaf, SleepersWakePeriodically) {
  TestNet net;
  protocols::GafConfig config;
  config.maxSleepTime = 5.0;  // short Ts so the test sees a wakeup
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {30.0, 30.0});
  for (auto& node : net.network.nodes()) net.installGaf(*node, config);
  net.start(3.0);
  net::NodeId sleeper = gafOf(net, 1).isLeader() ? 2 : 1;
  ASSERT_EQ(gafOf(net, sleeper).state(), GafState::kSleep);
  // Watch the radio: within ~2·Ts it must wake at least once (discovery).
  bool sawAwake = false;
  for (int i = 0; i < 100; ++i) {
    net.simulator.run(net.simulator.now() + 0.1);
    if (!net.network.findNode(sleeper)->radio().sleeping()) {
      sawAwake = true;
      break;
    }
  }
  EXPECT_TRUE(sawAwake);
}

TEST(Gaf, LeaderHandsOverAfterTa) {
  TestNet net;
  protocols::GafConfig config;
  config.maxActiveTime = 4.0;
  config.maxSleepTime = 4.0;
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {30.0, 30.0});
  for (auto& node : net.network.nodes()) net.installGaf(*node, config);
  net.start(2.0);
  net::NodeId first = gafOf(net, 1).isLeader() ? 1 : 2;
  net::NodeId second = first == 1 ? 2 : 1;
  // Run long enough for several Ta cycles; both hosts must lead at least
  // once (energy-rank rotation).
  bool secondLed = false;
  for (int i = 0; i < 200 && !secondLed; ++i) {
    net.simulator.run(net.simulator.now() + 0.25);
    secondLed = gafOf(net, second).isLeader();
  }
  EXPECT_TRUE(secondLed) << "leadership never rotated off node " << first;
}

TEST(Gaf, DeliversBetweenAwakeHosts) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {150.0, 50.0});
  net.addStatic(3, {250.0, 50.0});
  for (auto& node : net.network.nodes()) net.installGaf(*node);
  int delivered = 0;
  net.network.findNode(3)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  net.start(3.0);
  net.network.findNode(1)->sendFromApp(3, 512, {});
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(delivered, 1);
}

TEST(Gaf, EndpointsNeverLeadAndNeverSleep) {
  TestNet net;
  protocols::GafConfig endpoint;
  endpoint.endpointMode = true;
  net::Node& ep = net.addStatic(1, {50.0, 50.0});
  net.installGaf(ep, endpoint);
  net.addStatic(2, {40.0, 40.0});
  net.installGaf(*net.network.findNode(2));
  net.start(8.0);
  EXPECT_FALSE(gafOf(net, 1).isLeader());
  EXPECT_FALSE(net.network.findNode(1)->radio().sleeping());
  EXPECT_TRUE(gafOf(net, 2).isLeader());  // the only GAF candidate
}

TEST(Gaf, EndpointAloneInGridStillReachable) {
  TestNet net;
  protocols::GafConfig endpoint;
  endpoint.endpointMode = true;
  // Endpoint alone in cell (0,0); GAF hosts in neighbouring cells.
  net::Node& ep = net.addStatic(9, {50.0, 50.0});
  net.installGaf(ep, endpoint);
  net.addStatic(1, {150.0, 50.0});
  net.installGaf(*net.network.findNode(1));
  net::Node& src = net.addStatic(8, {250.0, 50.0});
  net.installGaf(src, endpoint);
  int delivered = 0;
  ep.setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  net.start(3.0);
  src.sendFromApp(9, 512, {});
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(delivered, 1);
}

TEST(Gaf, SleepingDestinationIsLostButEcgridDelivers) {
  // The paper's §1 argument in executable form. Identical 2-grid layout:
  // destination asleep as a plain (non-endpoint) node.
  auto runScenario = [](bool useEcgrid) {
    TestNet net;
    net.addStatic(1, {50.0, 50.0});   // leader/gateway of (0,0)
    net.addStatic(2, {30.0, 30.0});   // the sleeping destination
    net.addStatic(3, {150.0, 50.0});  // source (leader of its own grid)
    for (auto& node : net.network.nodes()) {
      if (useEcgrid) {
        net.installEcgrid(*node);
      } else {
        protocols::GafConfig config;
        config.maxSleepTime = 120.0;  // stays asleep through the test
        config.minSleepTime = 60.0;
        net.installGaf(*node, config);
      }
    }
    int delivered = 0;
    net.network.findNode(2)->setAppReceiveCallback(
        [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
    net.start(6.0);
    EXPECT_TRUE(net.network.findNode(2)->radio().sleeping());
    for (int k = 0; k < 3; ++k) {
      net.network.findNode(3)->sendFromApp(2, 512, {});
      net.simulator.run(net.simulator.now() + 1.0);
    }
    net.simulator.run(net.simulator.now() + 3.0);
    return delivered;
  };
  EXPECT_EQ(runScenario(/*useEcgrid=*/true), 3);   // RAS paging wakes it
  EXPECT_EQ(runScenario(/*useEcgrid=*/false), 0);  // GAF has no pager
}

}  // namespace
}  // namespace ecgrid::test
