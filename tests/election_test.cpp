// Tests for the gateway election rules (paper §3).
#include <gtest/gtest.h>

#include "protocols/common/election.hpp"
#include "sim/rng.hpp"

namespace ecgrid::protocols {
namespace {

using energy::BatteryLevel;

Candidate make(net::NodeId id, BatteryLevel level, double dist) {
  return Candidate{id, level, dist};
}

TEST(Election, Rule1BatteryLevelDominates) {
  ElectionPolicy policy;
  Candidate strong = make(9, BatteryLevel::kUpper, 60.0);
  Candidate weak = make(1, BatteryLevel::kBoundary, 1.0);
  EXPECT_TRUE(beats(strong, weak, policy));
  EXPECT_FALSE(beats(weak, strong, policy));
}

TEST(Election, Rule2DistanceBreaksLevelTies) {
  ElectionPolicy policy;
  Candidate near = make(9, BatteryLevel::kUpper, 5.0);
  Candidate far = make(1, BatteryLevel::kUpper, 30.0);
  EXPECT_TRUE(beats(near, far, policy));
}

TEST(Election, Rule3SmallestIdIsFinalTieBreak) {
  ElectionPolicy policy;
  Candidate a = make(2, BatteryLevel::kBoundary, 10.0);
  Candidate b = make(5, BatteryLevel::kBoundary, 10.0);
  EXPECT_TRUE(beats(a, b, policy));
  EXPECT_FALSE(beats(b, a, policy));
}

TEST(Election, DistanceEpsilonTreatsGpsNoiseAsEqual) {
  ElectionPolicy policy;
  policy.distanceEpsilon = 0.5;
  Candidate a = make(7, BatteryLevel::kUpper, 10.0);
  Candidate b = make(3, BatteryLevel::kUpper, 10.3);  // within epsilon
  EXPECT_TRUE(beats(b, a, policy));  // id decides
}

TEST(Election, GridPolicyIgnoresBattery) {
  ElectionPolicy policy;
  policy.useBatteryLevel = false;
  Candidate lowButNear = make(9, BatteryLevel::kLower, 2.0);
  Candidate fullButFar = make(1, BatteryLevel::kUpper, 40.0);
  EXPECT_TRUE(beats(lowButNear, fullButFar, policy));
}

TEST(Election, ElectGatewayPicksOverallWinner) {
  ElectionPolicy policy;
  std::vector<Candidate> field = {
      make(4, BatteryLevel::kBoundary, 3.0),
      make(2, BatteryLevel::kUpper, 25.0),
      make(8, BatteryLevel::kUpper, 12.0),
      make(6, BatteryLevel::kLower, 1.0),
  };
  auto winner = electGateway(field, policy);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(winner->id, 8);  // upper level, closer than 2
}

TEST(Election, EmptyFieldHasNoWinner) {
  EXPECT_FALSE(electGateway({}, ElectionPolicy{}).has_value());
}

TEST(Election, NewcomerNeedsStrictlyHigherLevel) {
  ElectionPolicy policy;
  Candidate sitting = make(1, BatteryLevel::kBoundary, 40.0);
  EXPECT_TRUE(newcomerReplaces(make(9, BatteryLevel::kUpper, 45.0), sitting,
                               policy));
  // Equal level never replaces, regardless of position (anti-thrash rule).
  EXPECT_FALSE(newcomerReplaces(make(9, BatteryLevel::kBoundary, 0.1), sitting,
                                policy));
  EXPECT_FALSE(newcomerReplaces(make(9, BatteryLevel::kLower, 0.1), sitting,
                                policy));
}

TEST(Election, GridNeverHotSwaps) {
  ElectionPolicy policy;
  policy.useBatteryLevel = false;
  EXPECT_FALSE(newcomerReplaces(make(9, BatteryLevel::kUpper, 0.0),
                                make(1, BatteryLevel::kLower, 70.0), policy));
}

// Property: beats() is a strict total order over distinct candidates —
// irreflexive, antisymmetric, transitive — so all hosts agree on one
// winner from the same HELLO set.
class ElectionOrder : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElectionOrder, StrictTotalOrder) {
  sim::RngStream rng(GetParam());
  ElectionPolicy policy;
  std::vector<Candidate> field;
  for (int i = 0; i < 24; ++i) {
    field.push_back(make(i,
                         static_cast<BatteryLevel>(rng.uniformInt(0, 2)),
                         rng.uniform(0.0, 70.0)));
  }
  for (const Candidate& a : field) {
    EXPECT_FALSE(beats(a, a, policy));
    for (const Candidate& b : field) {
      if (a.id == b.id) continue;
      EXPECT_NE(beats(a, b, policy), beats(b, a, policy));
      for (const Candidate& c : field) {
        if (beats(a, b, policy) && beats(b, c, policy)) {
          EXPECT_TRUE(beats(a, c, policy));
        }
      }
    }
  }
  // And every permutation elects the same winner.
  auto winner = electGateway(field, policy);
  std::vector<Candidate> reversed(field.rbegin(), field.rend());
  auto winner2 = electGateway(reversed, policy);
  ASSERT_TRUE(winner.has_value());
  ASSERT_TRUE(winner2.has_value());
  EXPECT_EQ(winner->id, winner2->id);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElectionOrder,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace ecgrid::protocols
