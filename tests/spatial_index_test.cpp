// Tests for the channel's spatial fan-out index: bucket bookkeeping,
// attachment-slot reuse, and — the property that licenses the whole
// optimisation — differential equivalence with the brute-force scan,
// from single broadcasts on randomized static topologies up to full
// mobile scenarios with an interference ring.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "energy/battery.hpp"
#include "harness/scenario.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "phy/spatial_index.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::phy {
namespace {

TEST(SpatialIndex, CollectNearReturnsOnlyThreeByThreeBlock) {
  SpatialIndex index(100.0);
  index.insert(0, geo::Vec2{150.0, 150.0});   // cell (1,1): the centre
  index.insert(1, geo::Vec2{250.0, 250.0});   // cell (2,2): neighbour
  index.insert(2, geo::Vec2{10.0, 150.0});    // cell (0,1): neighbour
  index.insert(3, geo::Vec2{350.0, 150.0});   // cell (3,1): too far
  index.insert(4, geo::Vec2{150.0, 450.0});   // cell (1,4): too far
  std::vector<std::size_t> near;
  index.collectNear(geo::Vec2{150.0, 150.0}, near);
  std::sort(near.begin(), near.end());
  EXPECT_EQ(near, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(index.size(), 5u);
}

TEST(SpatialIndex, UpdateRebuckets) {
  SpatialIndex index(100.0);
  index.insert(7, geo::Vec2{50.0, 50.0});
  std::vector<std::size_t> near;
  index.collectNear(geo::Vec2{550.0, 550.0}, near);
  EXPECT_TRUE(near.empty());
  index.update(7, geo::Vec2{560.0, 560.0});
  index.collectNear(geo::Vec2{550.0, 550.0}, near);
  EXPECT_EQ(near, (std::vector<std::size_t>{7}));
  near.clear();
  index.collectNear(geo::Vec2{50.0, 50.0}, near);
  EXPECT_TRUE(near.empty());
}

TEST(SpatialIndex, RemoveForgetsEntry) {
  SpatialIndex index(100.0);
  index.insert(1, geo::Vec2{10.0, 10.0});
  index.insert(2, geo::Vec2{20.0, 20.0});
  index.remove(1);
  EXPECT_EQ(index.size(), 1u);
  std::vector<std::size_t> near;
  index.collectNear(geo::Vec2{10.0, 10.0}, near);
  EXPECT_EQ(near, (std::vector<std::size_t>{2}));
}

TEST(SpatialIndex, DuplicateInsertAndMissingRemoveThrow) {
  SpatialIndex index(100.0);
  index.insert(1, geo::Vec2{0.0, 0.0});
  EXPECT_THROW(index.insert(1, geo::Vec2{5.0, 5.0}), std::logic_error);
  EXPECT_THROW(index.remove(9), std::logic_error);
  EXPECT_THROW(index.update(9, geo::Vec2{}), std::logic_error);
}

// --- Channel slot reuse ----------------------------------------------------

class StubHeader final : public net::Header {
 public:
  int bytes() const override { return 66; }
  const char* name() const override { return "STUB"; }
};

net::Packet broadcastFrame(net::NodeId src) {
  net::Packet frame;
  frame.macSrc = src;
  frame.macDst = net::kBroadcastId;
  frame.header = std::make_shared<StubHeader>();
  return frame;
}

TEST(Channel, DetachedSlotsAreReused) {
  sim::Simulator simulator;
  Channel channel(simulator, ChannelConfig{});
  energy::Battery battery(500.0);
  Radio a(simulator, battery, energy::PowerProfile{}, 0);
  Radio b(simulator, battery, energy::PowerProfile{}, 1);
  Radio c(simulator, battery, energy::PowerProfile{}, 2);
  std::size_t idA = channel.attach(&a, [] { return geo::Vec2{0.0, 0.0}; });
  std::size_t idB = channel.attach(&b, [] { return geo::Vec2{10.0, 0.0}; });
  EXPECT_EQ(channel.liveAttachmentCount(), 2u);
  EXPECT_EQ(a.channelAttachmentId(), idA);
  channel.detach(idA);
  EXPECT_EQ(channel.liveAttachmentCount(), 1u);
  EXPECT_EQ(a.channelAttachmentId(), Radio::kNoAttachment);
  std::size_t idC = channel.attach(&c, [] { return geo::Vec2{20.0, 0.0}; });
  EXPECT_EQ(idC, idA);  // the tombstone slot was recycled
  EXPECT_EQ(c.channelAttachmentId(), idC);
  EXPECT_EQ(channel.liveAttachmentCount(), 2u);
  EXPECT_THROW(channel.detach(idA + 100), std::invalid_argument);
  channel.detach(idB);
  EXPECT_THROW(channel.detach(idB), std::invalid_argument);  // double detach
}

// --- Differential: indexed fan-out == brute-force fan-out ------------------

// One channel's worth of state for the differential rigs below.
struct FanoutWorld {
  explicit FanoutWorld(int radioCount, bool useIndex,
                       double interferenceRange, std::uint64_t seed)
      : simulator(seed) {
    ChannelConfig config;
    config.useSpatialIndex = useIndex;
    config.interferenceRangeMeters = interferenceRange;
    channel.emplace(simulator, config);
    sim::RngStream rng(seed);
    for (int i = 0; i < radioCount; ++i) {
      positions.push_back(
          geo::Vec2{rng.uniform(0.0, 1200.0), rng.uniform(0.0, 1200.0)});
    }
    for (int i = 0; i < radioCount; ++i) {
      batteries.push_back(std::make_unique<energy::Battery>(500.0));
      radios.push_back(std::make_unique<Radio>(
          simulator, *batteries.back(), energy::PowerProfile{}, i));
      radios.back()->attachChannel(&*channel);
      geo::Vec2 p = positions[static_cast<std::size_t>(i)];
      channel->attach(radios.back().get(), [p] { return p; });
      int id = i;
      radios.back()->setFrameCallback([this, id](const net::Packet&) {
        deliveries.emplace_back(id, simulator.now());
      });
    }
  }

  /// Broadcast from radio `src` and drain the simulator; each frame is
  /// isolated in time so receptions never collide.
  void broadcastAndSettle(int src) {
    radios[static_cast<std::size_t>(src)]->transmit(broadcastFrame(src), 1e-4);
    simulator.run(simulator.now() + 1.0);
  }

  sim::Simulator simulator;
  std::optional<Channel> channel;
  std::vector<geo::Vec2> positions;
  std::vector<std::unique_ptr<energy::Battery>> batteries;
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::pair<int, double>> deliveries;  ///< (receiver, rx-end time)
};

class FanoutDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FanoutDifferential, IndexedMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const int radioCount = 60;
  // Interference ring wider than decode range so both delivery kinds and
  // the index's max(range, interference) cell sizing are exercised.
  const double interference = 450.0;
  FanoutWorld indexed(radioCount, true, interference, seed);
  FanoutWorld brute(radioCount, false, interference, seed);
  for (int src = 0; src < radioCount; ++src) {
    indexed.broadcastAndSettle(src);
    brute.broadcastAndSettle(src);
    ASSERT_EQ(indexed.deliveries, brute.deliveries) << "after tx from " << src;
    ASSERT_EQ(indexed.channel->deliveriesScheduled(),
              brute.channel->deliveriesScheduled());
    ASSERT_EQ(indexed.simulator.eventsExecuted(),
              brute.simulator.eventsExecuted());
  }
  EXPECT_GT(indexed.deliveries.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FanoutDifferential,
                         ::testing::Values(3u, 17u, 2026u));

}  // namespace
}  // namespace ecgrid::phy

// --- Whole-scenario differential ------------------------------------------

namespace ecgrid::harness {
namespace {

// With mobility and an interference ring on, a full run exercises the
// GridTracker-driven re-bucketing, death-time detaches, and slot reuse.
// The spatial index claims a *bit-identical physical trajectory*: every
// frame, delivery, battery sample, and death matches exactly — no
// tolerances. (Indexed mode does execute extra events — the re-bucketing
// timers — and audits are off here because audit sweeps key off the event
// count and their battery reads chunk the energy integration at different
// instants, perturbing samples at the last ulp.)
TEST(ScenarioDifferential, SpatialIndexIsBitIdenticalToBruteForce) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kEcgrid;
  config.hostCount = 30;
  config.fieldSize = 700.0;
  config.duration = 150.0;
  config.maxSpeed = 10.0;  // fast: many index-bucket crossings
  config.interferenceRangeFactor = 2.0;
  config.flowCount = 4;
  config.seed = 5;

  config.channelSpatialIndex = true;
  ScenarioResult indexed = runScenario(config);
  config.channelSpatialIndex = false;
  ScenarioResult brute = runScenario(config);

  // Re-bucketing timers only add events; they must not remove any.
  EXPECT_GT(indexed.eventsExecuted, brute.eventsExecuted);
  EXPECT_EQ(indexed.framesTransmitted, brute.framesTransmitted);
  EXPECT_EQ(indexed.packetsSent, brute.packetsSent);
  EXPECT_EQ(indexed.packetsReceived, brute.packetsReceived);
  EXPECT_EQ(indexed.macFramesSent, brute.macFramesSent);
  EXPECT_EQ(indexed.macFramesDropped, brute.macFramesDropped);
  EXPECT_EQ(indexed.macRetransmissions, brute.macRetransmissions);
  EXPECT_EQ(indexed.pagesSent, brute.pagesSent);
  EXPECT_EQ(indexed.deathTimes, brute.deathTimes);
  EXPECT_EQ(indexed.latencies, brute.latencies);
  ASSERT_EQ(indexed.aen.points().size(), brute.aen.points().size());
  EXPECT_EQ(indexed.aen.points(), brute.aen.points());
  EXPECT_EQ(indexed.aliveFraction.points(), brute.aliveFraction.points());
  EXPECT_EQ(indexed.awakeFraction.points(), brute.awakeFraction.points());
}

}  // namespace
}  // namespace ecgrid::harness
