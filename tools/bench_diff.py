#!/usr/bin/env python3
"""Diff two bench output trees and fail on metric drift.

The regression sentry for bench_out/: compares every BENCH_<figure>.json
present in a baseline tree against the same file in a candidate tree,
metric by metric, and exits non-zero when a deterministic metric moved
beyond its tolerance band. Intended CI use: regenerate the bench with
the current build and diff it against the committed bench_out/ — any
unexplained change in events_executed, delivery counters, energy series,
or latency histograms is a behavioral regression, not noise.

Metric classes:
  * deterministic — everything not matched below. Compared exactly by
    default; `--rel-tol R` (or a per-pattern `--tol GLOB=R`) widens the
    band to |a-b| <= R * max(|a|,|b|) + 1e-12.
  * wall-class    — wall_seconds, *_per_second, *.wall_s, *speedup*,
    jobs: machine-load-dependent, so REPORT-ONLY by default (printed,
    never fatal). `--wall-rel-tol R` opts them into enforcement.

Structural drift is always fatal: a scenario, series, or metric present
on one side only, series sampled at different x points, or a run-count
mismatch. A quick-mode mismatch (baseline full vs candidate --quick)
compares apples to oranges and fails up front unless
--allow-mode-mismatch.

BENCH_micro.json uses the microbench schema (all wall-clock) and is
skipped. Files present in only one tree are reported; a baseline file
missing from the candidate is fatal, a candidate-only file is not.

Only the Python standard library is used. Exit 0 = within tolerance.

Usage:
    tools/bench_diff.py BASELINE_DIR CANDIDATE_DIR [--rel-tol R]
        [--tol GLOB=R ...] [--wall-rel-tol R] [--allow-mode-mismatch]
"""

import argparse
import fnmatch
import glob
import json
import os
import sys

MAX_REPORTED = 40

WALL_PATTERNS = (
    "wall_seconds",
    "*_per_second",
    "*.wall_s",
    "*speedup*",
    "jobs",
)


def is_wall_metric(name):
    return any(fnmatch.fnmatch(name, p) for p in WALL_PATTERNS)


class Diff:
    def __init__(self, args):
        self.args = args
        self.failures = []
        self.wall_notes = []
        self.compared = 0

    def fail(self, where, message):
        self.failures.append("%s: %s" % (where, message))

    def tolerance_for(self, name):
        for pattern, tol in self.args.tol:
            if fnmatch.fnmatch(name, pattern):
                return tol
        return self.args.rel_tol

    def number(self, where, name, a, b):
        """Compare one numeric metric under its class's tolerance."""
        self.compared += 1
        if a == b:
            return
        denom = max(abs(a), abs(b))
        rel = abs(a - b) / denom if denom else 0.0
        if is_wall_metric(name):
            tol = self.args.wall_rel_tol
            if tol is None:
                self.wall_notes.append(
                    "%s: %s %.6g -> %.6g (%+.1f%%, wall-class, not enforced)"
                    % (where, name, a, b, 100.0 * (b - a) / a if a else 0.0))
                return
        else:
            tol = self.tolerance_for(name)
        if abs(a - b) > tol * denom + 1e-12:
            self.fail(where, "%s drifted %.17g -> %.17g (rel %.3g > tol %.3g)"
                      % (name, a, b, rel, tol))

    def numbers_in(self, where, base, cand):
        """Diff every numeric key of two flat dicts; flag asymmetries."""
        for name in sorted(set(base) | set(cand)):
            a, b = base.get(name), cand.get(name)
            a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
            b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
            if a is None:
                self.fail(where, "metric %r only in candidate" % name)
            elif b is None:
                self.fail(where, "metric %r only in baseline" % name)
            elif a_num and b_num:
                self.number(where, name, a, b)
            elif a != b:
                self.fail(where, "%s changed %r -> %r" % (name, a, b))

    def file(self, name, base, cand):
        where = name
        if base.get("quick") != cand.get("quick") and \
                not self.args.allow_mode_mismatch:
            self.fail(where, "quick-mode mismatch (baseline quick=%s, "
                      "candidate quick=%s); pass --allow-mode-mismatch "
                      "to compare anyway" %
                      (base.get("quick"), cand.get("quick")))
            return
        top_base = {k: v for k, v in base.items()
                    if not isinstance(v, (dict, list))}
        top_cand = {k: v for k, v in cand.items()
                    if not isinstance(v, (dict, list))}
        self.numbers_in(where, top_base, top_cand)
        self.numbers_in(where + ":metrics", base.get("metrics", {}),
                        cand.get("metrics", {}))
        base_series = base.get("series", {})
        cand_series = cand.get("series", {})
        for series in sorted(set(base_series) | set(cand_series)):
            swhere = "%s:series[%s]" % (where, series)
            if series not in base_series:
                self.fail(swhere, "only in candidate")
                continue
            if series not in cand_series:
                self.fail(swhere, "only in baseline")
                continue
            a, b = base_series[series], cand_series[series]
            if a.get("t") != b.get("t"):
                self.fail(swhere, "x-axis changed %s -> %s"
                          % (a.get("t"), b.get("t")))
                continue
            for x, va, vb in zip(a.get("t", []), a.get("v", []),
                                 b.get("v", [])):
                self.number(swhere, "%s@%g" % (series, x), va, vb)
        base_sc = base.get("scenarios", {})
        cand_sc = cand.get("scenarios", {})
        for scenario in sorted(set(base_sc) | set(cand_sc)):
            swhere = "%s:%s" % (where, scenario)
            if scenario not in base_sc:
                self.fail(swhere, "scenario only in candidate")
            elif scenario not in cand_sc:
                self.fail(swhere, "scenario only in baseline")
            else:
                self.numbers_in(swhere, base_sc[scenario],
                                cand_sc[scenario])


def bench_files(tree):
    found = {}
    for path in sorted(glob.glob(os.path.join(tree, "BENCH_*.json"))):
        name = os.path.basename(path)
        if name == "BENCH_micro.json":
            continue
        found[name] = path
    return found


def parse_tol(text):
    pattern, sep, value = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError("--tol wants GLOB=REL")
    return pattern, float(value)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_diff.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="baseline bench tree (committed)")
    parser.add_argument("candidate", help="candidate bench tree (fresh)")
    parser.add_argument("--rel-tol", type=float, default=0.0,
                        help="relative tolerance for deterministic metrics "
                             "(default 0 = exact)")
    parser.add_argument("--tol", action="append", type=parse_tol,
                        default=[], metavar="GLOB=REL",
                        help="per-metric tolerance band (first match wins)")
    parser.add_argument("--wall-rel-tol", type=float, default=None,
                        help="enforce wall-class metrics at this relative "
                             "tolerance (default: report-only)")
    parser.add_argument("--allow-mode-mismatch", action="store_true",
                        help="compare full vs --quick benches anyway")
    args = parser.parse_args(argv[1:])

    diff = Diff(args)
    base_files = bench_files(args.baseline)
    cand_files = bench_files(args.candidate)
    if not base_files:
        print("no BENCH_*.json under %s" % args.baseline, file=sys.stderr)
        return 2
    common = 0
    for name in sorted(set(base_files) | set(cand_files)):
        if name not in cand_files:
            diff.fail(name, "missing from candidate tree")
            continue
        if name not in base_files:
            print("%s: candidate-only, ignored" % name)
            continue
        with open(base_files[name], encoding="utf-8") as handle:
            base = json.load(handle)
        with open(cand_files[name], encoding="utf-8") as handle:
            cand = json.load(handle)
        diff.file(name, base, cand)
        common += 1

    for note in diff.wall_notes[:MAX_REPORTED]:
        print(note)
    if len(diff.wall_notes) > MAX_REPORTED:
        print("... and %d more wall-class note(s)"
              % (len(diff.wall_notes) - MAX_REPORTED))
    for failure in diff.failures[:MAX_REPORTED]:
        print("FAIL %s" % failure, file=sys.stderr)
    if len(diff.failures) > MAX_REPORTED:
        print("... and %d more failure(s)"
              % (len(diff.failures) - MAX_REPORTED), file=sys.stderr)
    verdict = "FAIL" if diff.failures else "OK"
    print("bench_diff: %s — %d file(s), %d metric(s) compared, "
          "%d failure(s), %d wall-class note(s)"
          % (verdict, common, diff.compared, len(diff.failures),
             len(diff.wall_notes)))
    return 1 if diff.failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
