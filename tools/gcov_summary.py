#!/usr/bin/env python3
"""Stdlib-only gcov line-coverage summariser (gcovr fallback).

Walks a coverage build tree for .gcno/.gcda pairs, runs
`gcov --json-format --stdout` on them, aggregates executable/executed
lines per source file under the requested filter, prints a per-file
table plus a TOTAL row, and exits nonzero when total line coverage falls
below the floor. Output format mirrors `gcovr --txt` closely enough for
humans and CI logs; use real gcovr when available.
"""

from __future__ import annotations

import argparse
import gzip
import json
import os
import subprocess
import sys
from pathlib import Path


def gcov_json_reports(build_dir: Path) -> list[dict]:
    """Run gcov over every .gcno with counters and parse its JSON."""
    reports = []
    gcno_files = sorted(build_dir.rglob("*.gcno"))
    if not gcno_files:
        sys.exit(f"gcov_summary: no .gcno files under {build_dir} "
                 "(build with ECGRID_COVERAGE=ON)")
    for gcno in gcno_files:
        result = subprocess.run(
            ["gcov", "--json-format", "--stdout", str(gcno)],
            capture_output=True,
            cwd=gcno.parent,
            check=False,
        )
        if result.returncode != 0:
            continue
        # --stdout emits one JSON document per translation unit,
        # newline-separated; some gcc versions gzip even on stdout.
        payload = result.stdout
        if payload[:2] == b"\x1f\x8b":
            payload = gzip.decompress(payload)
        for line in payload.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                reports.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return reports


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", type=Path, required=True)
    parser.add_argument("--root", type=Path, required=True)
    parser.add_argument("--filter", default="src/",
                        help="repo-relative prefix to include")
    parser.add_argument("--fail-under-line", type=float, default=0.0)
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args()

    root = args.root.resolve()
    # file -> [executable lines, executed lines]
    per_file: dict[str, list[int]] = {}
    # Distinct line numbers can be reported by several translation units
    # (headers); count a line covered if ANY unit executed it.
    line_hits: dict[str, dict[int, int]] = {}

    for report in gcov_json_reports(args.build_dir):
        for unit in report.get("files", []):
            source = Path(unit.get("file", ""))
            if not source.is_absolute():
                source = (args.build_dir / source).resolve()
            try:
                rel = source.resolve().relative_to(root).as_posix()
            except ValueError:
                continue
            if not rel.startswith(args.filter):
                continue
            hits = line_hits.setdefault(rel, {})
            for line in unit.get("lines", []):
                number = line.get("line_number")
                count = line.get("count", 0)
                if number is None:
                    continue
                hits[number] = max(hits.get(number, 0), count)

    rows = []
    total_lines = total_covered = 0
    for rel in sorted(line_hits):
        hits = line_hits[rel]
        executable = len(hits)
        covered = sum(1 for c in hits.values() if c > 0)
        per_file[rel] = [executable, covered]
        total_lines += executable
        total_covered += covered
        pct = 100.0 * covered / executable if executable else 100.0
        rows.append(f"{rel:<52} {executable:>6} {covered:>6} {pct:>6.1f}%")

    total_pct = 100.0 * total_covered / total_lines if total_lines else 0.0
    header = f"{'File':<52} {'Lines':>6} {'Exec':>6} {'Cover':>7}"
    divider = "-" * len(header)
    summary = "\n".join(
        [header, divider, *rows, divider,
         f"{'TOTAL':<52} {total_lines:>6} {total_covered:>6} "
         f"{total_pct:>6.1f}%"])
    print(summary)
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(summary + os.linesep)

    if total_pct < args.fail_under_line:
        print(f"gcov_summary: line coverage {total_pct:.1f}% is below the "
              f"floor {args.fail_under_line:.1f}%", file=sys.stderr)
        return 2
    print(f"gcov_summary: line coverage {total_pct:.1f}% "
          f"(floor {args.fail_under_line:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
