#!/usr/bin/env bash
# Run clang-tidy over src/ using the checked-in .clang-tidy config and the
# compile-commands database.
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [path...]
#
#   build-dir  directory holding compile_commands.json (default: build/;
#              configured automatically when missing)
#   path...    files or directories to lint (default: src/)
#
# Environment:
#   CLANG_TIDY          clang-tidy binary to use (default: clang-tidy)
#   TIDY_JOBS           parallel jobs (default: nproc)
#   ECGRID_TIDY_STRICT  when set, a missing clang-tidy binary is a hard
#                       failure instead of a skip (CI sets this so the
#                       lint gate can never silently vanish)
#
# Exits 0 when src/ is warning-clean (warnings are errors per the config),
# nonzero otherwise. When clang-tidy is not installed the script reports
# and exits 0 so environments without LLVM (e.g. gcc-only containers) can
# still run the rest of the checks; CI installs clang-tidy explicitly and
# exports ECGRID_TIDY_STRICT.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true
paths=("$@")
if [ "${#paths[@]}" -eq 0 ]; then
  paths=("${repo_root}/src")
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" > /dev/null 2>&1; then
  if [ -n "${ECGRID_TIDY_STRICT:-}" ]; then
    echo "run_clang_tidy: '${tidy_bin}' not found and ECGRID_TIDY_STRICT" \
         "is set — failing." >&2
    exit 1
  fi
  echo "run_clang_tidy: '${tidy_bin}' not found on PATH; skipping lint." >&2
  echo "run_clang_tidy: install clang-tidy (LLVM) to run this check." >&2
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in ${build_dir}; configuring…" >&2
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# Collect translation units under the requested paths that appear in the
# compilation database (headers are covered via HeaderFilterRegex).
mapfile -t sources < <(
  for path in "${paths[@]}"; do
    if [ -d "${path}" ]; then
      find "${path}" -name '*.cpp' | sort
    else
      echo "${path}"
    fi
  done
)
if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_clang_tidy: nothing to lint under: ${paths[*]}" >&2
  exit 0
fi

jobs="${TIDY_JOBS:-$(nproc)}"
echo "run_clang_tidy: linting ${#sources[@]} files with ${tidy_bin} (-j${jobs})"

status=0
printf '%s\n' "${sources[@]}" \
  | xargs -P "${jobs}" -n 1 "${tidy_bin}" -p "${build_dir}" --quiet \
  || status=$?

if [ "${status}" -eq 0 ]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above must be fixed (warnings are errors)" >&2
fi
exit "${status}"
