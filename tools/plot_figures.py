#!/usr/bin/env python3
"""Plot the paper's figures from the CSVs the bench binaries write.

Usage:
    for b in build/bench/fig*; do $b; done   # writes bench_out/*.csv
    python3 tools/plot_figures.py            # writes bench_out/*.png

Requires matplotlib. Each CSV has a shared `time` (or x) column followed
by one column per series, matching the paper's figure panels:

    fig4a_alive_speed1.csv    alive fraction vs time (Fig. 4a)
    fig5b_aen_speed10.csv     aen vs time (Fig. 5b)
    fig6a_latency_speed1.csv  mean latency (ms) vs pause time (Fig. 6a)
    fig7b_pdr_speed10.csv     delivery rate (%) vs pause time (Fig. 7b)
    fig8a_density_speed1.csv  alive fraction vs time per density (Fig. 8a)
"""

import csv
import pathlib
import sys

AXIS_LABELS = {
    "fig4": ("Simulation time (s)", "Fraction of alive hosts"),
    "fig5": ("Simulation time (s)", "Mean energy consumption per host (aen)"),
    "fig6": ("Pause time (s)", "Mean packet delivery latency (ms)"),
    "fig7": ("Pause time (s)", "Packet delivery rate (%)"),
    "fig8": ("Simulation time (s)", "Fraction of alive hosts"),
}


def load(path):
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    header = rows[0]
    columns = {name: [] for name in header}
    for row in rows[1:]:
        for name, cell in zip(header, row):
            if cell:
                columns[name].append(float(cell))
    return header, columns


def main():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    out_dir = pathlib.Path("bench_out")
    csvs = sorted(out_dir.glob("fig*.csv"))
    if not csvs:
        sys.exit("no bench_out/fig*.csv found — run the fig benches first")

    for path in csvs:
        header, columns = load(path)
        x_name = header[0]
        x = columns[x_name]
        fig, ax = plt.subplots(figsize=(6, 4))
        for name in header[1:]:
            y = columns[name]
            ax.plot(x[: len(y)], y, marker="o", markersize=3, label=name)
        key = path.stem[:4]
        xlabel, ylabel = AXIS_LABELS.get(key, (x_name, "value"))
        ax.set_xlabel(xlabel)
        ax.set_ylabel(ylabel)
        ax.set_title(path.stem)
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=8)
        fig.tight_layout()
        png = path.with_suffix(".png")
        fig.savefig(png, dpi=130)
        plt.close(fig)
        print(f"wrote {png}")


if __name__ == "__main__":
    main()
