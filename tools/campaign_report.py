#!/usr/bin/env python3
"""Summarize and validate ecgrid-campaign result files.

A campaign results file is JSONL: one record per completed scenario run,
appended by tools/ecgrid-campaign (src/campaign/campaign_runner.cpp).
Record schema:

  {"campaign": str, "fingerprint": 16-hex str, "seed": int,
   "config": {axis-key: value, ...}, "ok": bool, "error": str,
   "result": {scalar metrics..., "metrics": {name: value, ...}}}

`result` is present iff `ok` is true; `error` is non-empty iff `ok` is
false. Torn trailing lines (the process died mid-write) are tolerated by
the runner's resume scan, so the default report tolerates them too and
counts them; `--check` treats any malformed line as a failure.

Modes:
  default   — group records by their override config (seeds collapse into
              one group) and print per-group seed count, pass/fail, and
              mean delivery rate / p95 latency / aborted flows.
  --check   — strict schema validation for CI: every line parses, every
              record carries the required keys with the right types,
              fingerprints are 16 lowercase hex chars and unique, and
              ok/error/result agree. Exit 0 = valid, 1 = violations.

Only the Python standard library is used.

Usage:
    tools/campaign_report.py results.jsonl [more files...]
    tools/campaign_report.py --check results.jsonl
"""

import json
import sys

MAX_REPORTED = 20

FINGERPRINT_LEN = 16
HEX_DIGITS = set("0123456789abcdef")

REQUIRED_KEYS = {
    "campaign": str,
    "fingerprint": str,
    "seed": (int, float),
    "config": dict,
    "ok": bool,
    "error": str,
}

RESULT_SCALARS = (
    "packetsSent",
    "packetsReceived",
    "abortedFlows",
    "deliveryRate",
    "eventsExecuted",
)


def load_lines(path):
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                yield number, line


def check_record(record):
    """Yield violation strings for one parsed record."""
    for key, kind in REQUIRED_KEYS.items():
        if key not in record:
            yield "missing key %r" % key
        elif not isinstance(record[key], kind):
            yield "key %r is %s" % (key, type(record[key]).__name__)
    fingerprint = record.get("fingerprint")
    if isinstance(fingerprint, str):
        if len(fingerprint) != FINGERPRINT_LEN or not set(fingerprint) <= HEX_DIGITS:
            yield "fingerprint %r is not 16 lowercase hex chars" % fingerprint
    ok = record.get("ok")
    if ok is True:
        if record.get("error"):
            yield "ok record carries error %r" % record["error"]
        result = record.get("result")
        if not isinstance(result, dict):
            yield "ok record has no result object"
        else:
            for key in RESULT_SCALARS:
                if not isinstance(result.get(key), (int, float)):
                    yield "result key %r missing or non-numeric" % key
            if not isinstance(result.get("metrics"), dict):
                yield "result has no metrics object"
    elif ok is False:
        if not record.get("error"):
            yield "failed record has empty error"
        if "result" in record:
            yield "failed record carries a result object"


def run_check(paths):
    violations = []
    seen = {}
    for path in paths:
        for number, line in load_lines(path):
            where = "%s:%d" % (path, number)
            try:
                record = json.loads(line)
            except ValueError as error:
                violations.append("%s: not JSON (%s)" % (where, error))
                continue
            if not isinstance(record, dict):
                violations.append("%s: record is not an object" % where)
                continue
            for problem in check_record(record):
                violations.append("%s: %s" % (where, problem))
            key = (record.get("fingerprint"), record.get("seed"))
            if isinstance(key[0], str):
                if key[0] in seen:
                    violations.append(
                        "%s: duplicate fingerprint %s (first at %s)"
                        % (where, key[0], seen[key[0]])
                    )
                else:
                    seen[key[0]] = where
    for violation in violations[:MAX_REPORTED]:
        print(violation, file=sys.stderr)
    if len(violations) > MAX_REPORTED:
        print(
            "... and %d more" % (len(violations) - MAX_REPORTED), file=sys.stderr
        )
    if violations:
        return 1
    print("campaign_report --check: %d record(s) valid" % len(seen))
    return 0


def group_key(config):
    """Stable per-config key; seeds collapse into one group."""
    return json.dumps(config, sort_keys=True)


def mean(values):
    return sum(values) / len(values) if values else 0.0


def run_report(paths):
    groups = {}
    torn = 0
    for path in paths:
        for _, line in load_lines(path):
            try:
                record = json.loads(line)
            except ValueError:
                torn += 1
                continue
            config = record.get("config", {})
            group = groups.setdefault(
                group_key(config),
                {"config": config, "seeds": 0, "failed": 0, "delivery": [],
                 "p95": [], "aborted": []},
            )
            group["seeds"] += 1
            if not record.get("ok"):
                group["failed"] += 1
                continue
            result = record.get("result", {})
            group["delivery"].append(result.get("deliveryRate", 0.0))
            group["p95"].append(result.get("p95LatencySeconds", 0.0))
            group["aborted"].append(result.get("abortedFlows", 0))
    if not groups:
        print("no records", file=sys.stderr)
        return 1
    print(
        "%-48s %5s %6s %9s %9s %8s"
        % ("config", "seeds", "failed", "delivery", "p95_s", "aborted")
    )
    for key in sorted(groups):
        group = groups[key]
        label = ",".join(
            "%s=%s" % (axis, value)
            for axis, value in sorted(group["config"].items())
        ) or "(base)"
        if len(label) > 48:
            label = label[:45] + "..."
        print(
            "%-48s %5d %6d %9.4f %9.4f %8.1f"
            % (
                label,
                group["seeds"],
                group["failed"],
                mean(group["delivery"]),
                mean(group["p95"]),
                mean(group["aborted"]),
            )
        )
    if torn:
        print("(%d torn line(s) ignored)" % torn)
    return 0


def main(argv):
    args = [arg for arg in argv[1:] if arg != "--check"]
    check = len(args) != len(argv) - 1
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if check:
        return run_check(args)
    return run_report(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
