#!/usr/bin/env python3
"""Summarize and validate ecgrid-campaign result files.

A campaign results file is JSONL: one record per completed scenario run,
appended by tools/ecgrid-campaign (src/campaign/campaign_runner.cpp).
Record schema:

  {"campaign": str, "fingerprint": 16-hex str, "seed": int,
   "config": {axis-key: value, ...}, "ok": bool, "error": str,
   "result": {scalar metrics..., "metrics": {name: value, ...}},
   "telemetry": {"peakQueueDepth": n, "slabSlots": n,
                 "eventsPerSimSecond": x, "shardImbalance": x,
                 "windowStalls": n, "crossShardEvents": n}}

`result` (and the deterministic `telemetry` roll-up, PR 10) is present
iff `ok` is true; `error` is non-empty iff `ok` is false. Torn trailing
lines (the process died mid-write) are tolerated by the runner's resume
scan, so the default report tolerates them too and counts them;
`--check` treats any malformed line as a failure.

Modes:
  default   — group records by their override config (seeds collapse into
              one group) and print per-group seed count, pass/fail, and
              mean delivery rate / p95 latency / aborted flows.
  --check   — strict schema validation for CI: every line parses, every
              record carries the required keys with the right types,
              fingerprints are 16 lowercase hex chars and unique,
              ok/error/result agree, and any telemetry roll-up is
              complete (all six keys, numeric, imbalance >= 1, counts
              >= 0, never on a failed record). Exit 0 = valid,
              1 = violations.
  --db PATH — read records from an ecgrid_query.py SQLite store instead
              of JSONL files and print the same grouped report
              (report mode only; --check needs the raw JSONL).

Only the Python standard library is used.

Usage:
    tools/campaign_report.py results.jsonl [more files...]
    tools/campaign_report.py --check results.jsonl
    tools/campaign_report.py --db store.db
"""

import json
import sqlite3
import sys

MAX_REPORTED = 20

FINGERPRINT_LEN = 16
HEX_DIGITS = set("0123456789abcdef")

REQUIRED_KEYS = {
    "campaign": str,
    "fingerprint": str,
    "seed": (int, float),
    "config": dict,
    "ok": bool,
    "error": str,
}

RESULT_SCALARS = (
    "packetsSent",
    "packetsReceived",
    "abortedFlows",
    "deliveryRate",
    "eventsExecuted",
)

# The deterministic per-run roll-up recordToJson attaches to ok records.
# Keys must match campaign_runner.cpp's telemetryToJson exactly: a missing
# or extra key means the record writer and this checker have diverged.
TELEMETRY_KEYS = (
    "peakQueueDepth",
    "slabSlots",
    "eventsPerSimSecond",
    "shardImbalance",
    "windowStalls",
    "crossShardEvents",
)


def check_telemetry(telemetry):
    """Yield violation strings for one record's telemetry roll-up."""
    if not isinstance(telemetry, dict):
        yield "telemetry is %s, not an object" % type(telemetry).__name__
        return
    for key in TELEMETRY_KEYS:
        if not isinstance(telemetry.get(key), (int, float)):
            yield "telemetry key %r missing or non-numeric" % key
    for key in sorted(set(telemetry) - set(TELEMETRY_KEYS)):
        yield "unexpected telemetry key %r" % key
    imbalance = telemetry.get("shardImbalance")
    if isinstance(imbalance, (int, float)) and imbalance < 1.0:
        yield "shardImbalance %r < 1 (it is max/mean)" % imbalance
    for key in ("peakQueueDepth", "slabSlots", "windowStalls",
                "crossShardEvents"):
        value = telemetry.get(key)
        if isinstance(value, (int, float)) and value < 0:
            yield "telemetry key %r is negative" % key


def load_lines(path):
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                yield number, line


def check_record(record):
    """Yield violation strings for one parsed record."""
    for key, kind in REQUIRED_KEYS.items():
        if key not in record:
            yield "missing key %r" % key
        elif not isinstance(record[key], kind):
            yield "key %r is %s" % (key, type(record[key]).__name__)
    fingerprint = record.get("fingerprint")
    if isinstance(fingerprint, str):
        if len(fingerprint) != FINGERPRINT_LEN or not set(fingerprint) <= HEX_DIGITS:
            yield "fingerprint %r is not 16 lowercase hex chars" % fingerprint
    ok = record.get("ok")
    if ok is True:
        if record.get("error"):
            yield "ok record carries error %r" % record["error"]
        result = record.get("result")
        if not isinstance(result, dict):
            yield "ok record has no result object"
        else:
            for key in RESULT_SCALARS:
                if not isinstance(result.get(key), (int, float)):
                    yield "result key %r missing or non-numeric" % key
            if not isinstance(result.get("metrics"), dict):
                yield "result has no metrics object"
        if "telemetry" in record:
            yield from check_telemetry(record["telemetry"])
    elif ok is False:
        if not record.get("error"):
            yield "failed record has empty error"
        if "result" in record:
            yield "failed record carries a result object"
        if "telemetry" in record:
            yield "failed record carries a telemetry roll-up"


def run_check(paths):
    violations = []
    seen = {}
    for path in paths:
        for number, line in load_lines(path):
            where = "%s:%d" % (path, number)
            try:
                record = json.loads(line)
            except ValueError as error:
                violations.append("%s: not JSON (%s)" % (where, error))
                continue
            if not isinstance(record, dict):
                violations.append("%s: record is not an object" % where)
                continue
            for problem in check_record(record):
                violations.append("%s: %s" % (where, problem))
            key = (record.get("fingerprint"), record.get("seed"))
            if isinstance(key[0], str):
                if key[0] in seen:
                    violations.append(
                        "%s: duplicate fingerprint %s (first at %s)"
                        % (where, key[0], seen[key[0]])
                    )
                else:
                    seen[key[0]] = where
    for violation in violations[:MAX_REPORTED]:
        print(violation, file=sys.stderr)
    if len(violations) > MAX_REPORTED:
        print(
            "... and %d more" % (len(violations) - MAX_REPORTED), file=sys.stderr
        )
    if violations:
        return 1
    print("campaign_report --check: %d record(s) valid" % len(seen))
    return 0


def group_key(config):
    """Stable per-config key; seeds collapse into one group."""
    return json.dumps(config, sort_keys=True)


def mean(values):
    return sum(values) / len(values) if values else 0.0


def records_from_files(paths):
    """Yield parsed records; a torn/malformed line yields None."""
    for path in paths:
        for _, line in load_lines(path):
            try:
                yield json.loads(line)
            except ValueError:
                yield None


def records_from_db(path):
    """Reconstruct records from an ecgrid_query.py SQLite store."""
    db = sqlite3.connect(path)
    rows = db.execute(
        "SELECT fingerprint, campaign, seed, ok, error FROM run"
    ).fetchall()
    for fingerprint, campaign, seed, ok, error in rows:
        config = dict(db.execute(
            "SELECT key, value FROM run_config WHERE fingerprint = ?",
            (fingerprint,)))
        result = dict(db.execute(
            "SELECT name, value FROM run_metric WHERE fingerprint = ? "
            "AND name NOT LIKE 'telemetry.%'", (fingerprint,)))
        yield {
            "campaign": campaign,
            "fingerprint": fingerprint,
            "seed": seed,
            "config": config,
            "ok": bool(ok),
            "error": error,
            "result": result,
        }
    db.close()


def run_report(records):
    groups = {}
    torn = 0
    for record in records:
        if record is None:
            torn += 1
            continue
        config = record.get("config", {})
        group = groups.setdefault(
            group_key(config),
            {"config": config, "seeds": 0, "failed": 0, "delivery": [],
             "p95": [], "aborted": []},
        )
        group["seeds"] += 1
        if not record.get("ok"):
            group["failed"] += 1
            continue
        result = record.get("result", {})
        group["delivery"].append(result.get("deliveryRate", 0.0))
        group["p95"].append(result.get("p95LatencySeconds", 0.0))
        group["aborted"].append(result.get("abortedFlows", 0))
    if not groups:
        print("no records", file=sys.stderr)
        return 1
    print(
        "%-48s %5s %6s %9s %9s %8s"
        % ("config", "seeds", "failed", "delivery", "p95_s", "aborted")
    )
    for key in sorted(groups):
        group = groups[key]
        label = ",".join(
            "%s=%s" % (axis, value)
            for axis, value in sorted(group["config"].items())
        ) or "(base)"
        if len(label) > 48:
            label = label[:45] + "..."
        print(
            "%-48s %5d %6d %9.4f %9.4f %8.1f"
            % (
                label,
                group["seeds"],
                group["failed"],
                mean(group["delivery"]),
                mean(group["p95"]),
                mean(group["aborted"]),
            )
        )
    if torn:
        print("(%d torn line(s) ignored)" % torn)
    return 0


def main(argv):
    args = [arg for arg in argv[1:] if arg != "--check"]
    check = len(args) != len(argv) - 1
    db = None
    if "--db" in args:
        at = args.index("--db")
        if at + 1 >= len(args):
            print("--db needs a path", file=sys.stderr)
            return 2
        db = args[at + 1]
        del args[at:at + 2]
    if db is not None:
        if check:
            print("--check needs the raw JSONL, not --db", file=sys.stderr)
            return 2
        if args:
            print("--db replaces file arguments", file=sys.stderr)
            return 2
        return run_report(records_from_db(db))
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if check:
        return run_check(args)
    return run_report(records_from_files(args))


if __name__ == "__main__":
    sys.exit(main(sys.argv))
