#!/usr/bin/env python3
"""Convert an ecgrid-events JSONL trace to Chrome trace-event format.

Input: the JSONL file written by obs::EventTracer (see src/obs/trace.hpp)
— a header line {"schema":"ecgrid-events","version":1,...} followed by one
event per line:

    {"t":12.000341,"cat":"pkt","ev":"flow","ph":"b","id":42,"node":7,
     "args":{"dst":19,"bytes":512}}

Output: a Chrome/Perfetto-loadable JSON object {"traceEvents":[...]}.
Open it at https://ui.perfetto.dev (or chrome://tracing). The mapping:

  * ph "b"/"e"  -> async begin/end ("b"/"e"), paired by (cat, id). Spans
                   render as horizontal bars per category; nesting within
                   an id is preserved by the viewer.
  * ph "i"      -> instant ("i"), thread-scoped.
  * sim time    -> ts in microseconds (Chrome's native unit), so one
                   simulated second reads as one second in the viewer.
  * node        -> tid, with pid 1 for everything. One lane per host.
  * header meta -> process_name/thread_name metadata ("M") records.

Only the Python standard library is used. Exit status is 0 on success,
1 on malformed input (first error is reported).

Usage:
    tools/trace_chrome.py events.jsonl [-o trace.json]
"""

import argparse
import json
import sys


def fail(lineno, message):
    print(f"trace_chrome: line {lineno}: {message}", file=sys.stderr)
    return 1


def convert(lines):
    """Yields (ok, result): ok=False carries (lineno, error) instead."""
    events = []
    nodes = set()
    header = None
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            return (lineno, f"invalid JSON: {exc}"), None
        if lineno == 1:
            if record.get("schema") != "ecgrid-events":
                return (lineno, "missing ecgrid-events schema header"), None
            header = record
            continue
        for key in ("t", "cat", "ev", "ph"):
            if key not in record:
                return (lineno, f"missing required key '{key}'"), None
        phase = record["ph"]
        if phase not in ("b", "e", "i"):
            return (lineno, f"unknown phase '{phase}'"), None
        tid = record.get("node", 0)
        nodes.add(tid)
        out = {
            "name": f"{record['cat']}/{record['ev']}",
            "cat": record["cat"],
            "ph": phase,
            "ts": record["t"] * 1e6,
            "pid": 1,
            "tid": tid,
        }
        if phase in ("b", "e"):
            if "id" not in record:
                return (lineno, "span event without an id"), None
            out["id"] = record["id"]
        else:
            out["s"] = "t"  # thread-scoped instant
        if "args" in record:
            out["args"] = record["args"]
        events.append(out)

    if header is None:
        return (0, "empty trace (no header line)"), None

    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "ecgrid simulation"},
        }
    ]
    for tid in sorted(nodes):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"host {tid}"},
            }
        )
    return None, {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            k: v for k, v in header.items() if k not in ("schema", "version")
        },
    }


def main():
    parser = argparse.ArgumentParser(
        description="ecgrid-events JSONL -> Chrome trace-event JSON"
    )
    parser.add_argument("input", help="EventTracer JSONL file")
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="output path (default: <input>.chrome.json)",
    )
    options = parser.parse_args()

    with open(options.input, "r", encoding="utf-8") as handle:
        error, trace = convert(handle)
    if error is not None:
        return fail(*error)

    output = options.output or options.input + ".chrome.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    spans = sum(1 for e in trace["traceEvents"] if e["ph"] == "b")
    instants = sum(1 for e in trace["traceEvents"] if e["ph"] == "i")
    print(f"{output}: {spans} spans, {instants} instants")
    return 0


if __name__ == "__main__":
    sys.exit(main())
