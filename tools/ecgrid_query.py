#!/usr/bin/env python3
"""Queryable results store for ecgrid campaigns and benches (SQLite).

Ingests the two result formats the repo produces into one SQLite file,
then answers questions about them without re-parsing JSON by hand:

  * campaign JSONL — one record per run from tools/ecgrid-campaign
    (src/campaign/campaign_runner.cpp), including the deterministic
    `telemetry` roll-up block added in PR 10.
  * bench JSON — bench_out/BENCH_<figure>.json from tools/ecgrid-bench
    figure runs. BENCH_micro.json (Google-Benchmark-style microbench
    output) has a different schema and is skipped with a note.

Schema (all created on first ingest; ingest is idempotent — rows are
REPLACEd by primary key, so re-ingesting a regenerated file updates in
place):

  bench(figure PK, source, quick, jobs, runs, wall_seconds,
        events_executed, events_per_second, frames_transmitted,
        frames_per_second)
  bench_metric(figure, name, value)            -- top-level "metrics"
  bench_series(figure, series, x, value)       -- "series" point sets
  bench_scenario_metric(figure, scenario, metric, value)
  run(fingerprint PK, campaign, seed, ok, error, source)
  run_config(fingerprint, key, value)          -- sweep-axis overrides
  run_metric(fingerprint, name, value)         -- result scalars,
        result.metrics.*, and telemetry.* (prefixed)

Subcommands:
  ingest  --db FILE paths...   build/refresh the store
  tables  --db FILE            row counts per table
  slo     --db FILE [--figure F]        SLO %% per series point
  energy  --db FILE [--figure F]        energy series (aen_joules)
  top     --db FILE --metric M [--figure F] [-n N] [--asc]
                                        top-N scenarios by a metric
  campaign --db FILE [--campaign C] [--where k=v ...]
                                        per-config aggregates incl.
                                        telemetry roll-up means
  sql     --db FILE "SELECT ..."        raw read-only SQL

Only the Python standard library is used.

Examples (documented in EXPERIMENTS.md):
    tools/ecgrid_query.py ingest --db store.db bench_out/BENCH_*.json
    tools/ecgrid_query.py slo --db store.db --figure workload
    tools/ecgrid_query.py top --db store.db --figure workload \\
        --metric mac.frames_dropped -n 5
    tools/ecgrid_query.py campaign --db store.db --where protocol=ECGRID
"""

import argparse
import json
import os
import sqlite3
import sys

BENCH_SCALARS = (
    ("quick", int),
    ("jobs", int),
    ("runs", int),
    ("wall_seconds", float),
    ("events_executed", int),
    ("events_per_second", float),
    ("frames_transmitted", int),
    ("frames_per_second", float),
)

DDL = """
CREATE TABLE IF NOT EXISTS bench (
  figure TEXT PRIMARY KEY, source TEXT, quick INTEGER, jobs INTEGER,
  runs INTEGER, wall_seconds REAL, events_executed INTEGER,
  events_per_second REAL, frames_transmitted INTEGER,
  frames_per_second REAL);
CREATE TABLE IF NOT EXISTS bench_metric (
  figure TEXT, name TEXT, value REAL, PRIMARY KEY (figure, name));
CREATE TABLE IF NOT EXISTS bench_series (
  figure TEXT, series TEXT, x REAL, value REAL,
  PRIMARY KEY (figure, series, x));
CREATE TABLE IF NOT EXISTS bench_scenario_metric (
  figure TEXT, scenario TEXT, metric TEXT, value REAL,
  PRIMARY KEY (figure, scenario, metric));
CREATE TABLE IF NOT EXISTS run (
  fingerprint TEXT PRIMARY KEY, campaign TEXT, seed INTEGER,
  ok INTEGER, error TEXT, source TEXT);
CREATE TABLE IF NOT EXISTS run_config (
  fingerprint TEXT, key TEXT, value TEXT, PRIMARY KEY (fingerprint, key));
CREATE TABLE IF NOT EXISTS run_metric (
  fingerprint TEXT, name TEXT, value REAL, PRIMARY KEY (fingerprint, name));
"""


def ingest_bench(db, path, doc):
    figure = doc["figure"]
    row = [figure, os.path.basename(path)]
    for name, cast in BENCH_SCALARS:
        value = doc.get(name)
        row.append(cast(value) if value is not None else None)
    db.execute(
        "REPLACE INTO bench VALUES (?,?,?,?,?,?,?,?,?,?)", row
    )
    # Re-ingest replaces, so clear dependents first: a regenerated bench
    # may have dropped a series or scenario, and stale rows would lie.
    for table in ("bench_metric", "bench_series", "bench_scenario_metric"):
        db.execute("DELETE FROM %s WHERE figure = ?" % table, (figure,))
    for name, value in doc.get("metrics", {}).items():
        if isinstance(value, (int, float)):
            db.execute(
                "REPLACE INTO bench_metric VALUES (?,?,?)",
                (figure, name, float(value)),
            )
    for series, points in doc.get("series", {}).items():
        xs, vs = points.get("t", []), points.get("v", [])
        for x, value in zip(xs, vs):
            db.execute(
                "REPLACE INTO bench_series VALUES (?,?,?,?)",
                (figure, series, float(x), float(value)),
            )
    for scenario, metrics in doc.get("scenarios", {}).items():
        for metric, value in metrics.items():
            if isinstance(value, (int, float)):
                db.execute(
                    "REPLACE INTO bench_scenario_metric VALUES (?,?,?,?)",
                    (figure, scenario, metric, float(value)),
                )
    return 1


def flatten_result(result):
    """Numeric result fields, with nested result.metrics.* inlined."""
    for name, value in result.items():
        if name == "metrics" and isinstance(value, dict):
            for inner, inner_value in value.items():
                if isinstance(inner_value, (int, float)):
                    yield inner, float(inner_value)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            yield name, float(value)


def ingest_campaign(db, path, lines):
    records = torn = 0
    for lineno, line in lines:
        try:
            record = json.loads(line)
        except ValueError:
            torn += 1  # torn trailing line after a kill: skip, like resume
            continue
        fingerprint = record.get("fingerprint")
        if not isinstance(fingerprint, str):
            torn += 1
            continue
        db.execute(
            "REPLACE INTO run VALUES (?,?,?,?,?,?)",
            (
                fingerprint,
                record.get("campaign", ""),
                int(record.get("seed", 0)),
                1 if record.get("ok") else 0,
                record.get("error", ""),
                os.path.basename(path),
            ),
        )
        db.execute(
            "DELETE FROM run_config WHERE fingerprint = ?", (fingerprint,)
        )
        db.execute(
            "DELETE FROM run_metric WHERE fingerprint = ?", (fingerprint,)
        )
        for key, value in record.get("config", {}).items():
            db.execute(
                "REPLACE INTO run_config VALUES (?,?,?)",
                (fingerprint, key, str(value)),
            )
        for name, value in flatten_result(record.get("result", {}) or {}):
            db.execute(
                "REPLACE INTO run_metric VALUES (?,?,?)",
                (fingerprint, name, value),
            )
        for name, value in (record.get("telemetry", {}) or {}).items():
            if isinstance(value, (int, float)):
                db.execute(
                    "REPLACE INTO run_metric VALUES (?,?,?)",
                    (fingerprint, "telemetry." + name, float(value)),
                )
        records += 1
    return records, torn


def cmd_ingest(args):
    db = sqlite3.connect(args.db)
    db.executescript(DDL)
    for path in args.paths:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline().strip()
            if not first:
                print("%s: empty, skipped" % path)
                continue
            head = None
            try:
                head = json.loads(first)
            except ValueError:
                pass
            if isinstance(head, dict) and "fingerprint" in head:
                # Campaign JSONL: first line is itself a record.
                def numbered():
                    yield 1, first
                    for lineno, raw in enumerate(handle, start=2):
                        raw = raw.strip()
                        if raw:
                            yield lineno, raw

                records, torn = ingest_campaign(db, path, numbered())
                note = " (%d torn)" % torn if torn else ""
                print("%s: %d campaign record(s)%s" % (path, records, note))
                continue
            # Whole-file JSON (bench output).
            handle.seek(0)
            try:
                doc = json.load(handle)
            except ValueError as exc:
                print("%s: not JSON (%s), skipped" % (path, exc))
                continue
            if "benchmarks" in doc:
                print("%s: microbench schema, skipped" % path)
                continue
            if "figure" not in doc:
                print("%s: unrecognized schema, skipped" % path)
                continue
            ingest_bench(db, path, doc)
            print("%s: bench figure %r" % (path, doc["figure"]))
    db.commit()
    db.close()
    return 0


def open_store(args):
    if not os.path.exists(args.db):
        print("no store at %s (run `ingest` first)" % args.db,
              file=sys.stderr)
        sys.exit(1)
    return sqlite3.connect(args.db)


def print_rows(cursor):
    rows = cursor.fetchall()
    names = [d[0] for d in cursor.description]
    widths = [
        max(len(n), max((len(fmt(r[i])) for r in rows), default=0))
        for i, n in enumerate(names)
    ]
    print("  ".join(n.ljust(w) for n, w in zip(names, widths)))
    for row in rows:
        print("  ".join(fmt(v).ljust(w) for v, w in zip(row, widths)))
    return len(rows)


def fmt(value):
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def cmd_tables(args):
    db = open_store(args)
    for table in ("bench", "bench_metric", "bench_series",
                  "bench_scenario_metric", "run", "run_config",
                  "run_metric"):
        count = db.execute("SELECT COUNT(*) FROM %s" % table).fetchone()[0]
        print("%-22s %8d" % (table, count))
    return 0


def figure_clause(args):
    if args.figure:
        return " AND figure = ?", [args.figure]
    return "", []


def cmd_slo(args):
    db = open_store(args)
    clause, params = figure_clause(args)
    rows = print_rows(db.execute(
        "SELECT figure, series, x AS load, value AS slo_pct "
        "FROM bench_series WHERE series LIKE '%_slo_pct'" + clause +
        " ORDER BY figure, series, x", params))
    return 0 if rows else 1


def cmd_energy(args):
    db = open_store(args)
    clause, params = figure_clause(args)
    rows = print_rows(db.execute(
        "SELECT figure, series, x, value AS joules "
        "FROM bench_series WHERE series LIKE '%_aen_joules'" + clause +
        " ORDER BY figure, series, x", params))
    return 0 if rows else 1


def cmd_top(args):
    db = open_store(args)
    clause, params = figure_clause(args)
    order = "ASC" if args.asc else "DESC"
    rows = print_rows(db.execute(
        "SELECT figure, scenario, value FROM bench_scenario_metric "
        "WHERE metric = ?" + clause +
        " ORDER BY value %s LIMIT ?" % order,
        [args.metric] + params + [args.n]))
    return 0 if rows else 1


CAMPAIGN_MEANS = (
    ("deliveryRate", "delivery"),
    ("p95LatencySeconds", "p95_s"),
    ("abortedFlows", "aborted"),
    ("telemetry.peakQueueDepth", "peak_q"),
    ("telemetry.shardImbalance", "imbal"),
    ("telemetry.eventsPerSimSecond", "ev_per_sim"),
)


def cmd_campaign(args):
    db = open_store(args)
    where, params = [], []
    if args.campaign:
        where.append("campaign = ?")
        params.append(args.campaign)
    fingerprints = None
    for cond in args.where or []:
        key, _, value = cond.partition("=")
        rows = db.execute(
            "SELECT fingerprint FROM run_config WHERE key = ? AND value = ?",
            (key, value))
        matched = {r[0] for r in rows}
        fingerprints = matched if fingerprints is None else (
            fingerprints & matched)
    sql = "SELECT fingerprint, ok FROM run"
    if where:
        sql += " WHERE " + " AND ".join(where)
    groups = {}
    for fingerprint, ok in db.execute(sql, params):
        if fingerprints is not None and fingerprint not in fingerprints:
            continue
        config = dict(db.execute(
            "SELECT key, value FROM run_config WHERE fingerprint = ?",
            (fingerprint,)))
        label = ",".join(
            "%s=%s" % kv for kv in sorted(config.items())) or "(base)"
        group = groups.setdefault(
            label, {"seeds": 0, "failed": 0,
                    "sums": {m: [0.0, 0] for m, _ in CAMPAIGN_MEANS}})
        group["seeds"] += 1
        if not ok:
            group["failed"] += 1
            continue
        for metric, _ in CAMPAIGN_MEANS:
            row = db.execute(
                "SELECT value FROM run_metric "
                "WHERE fingerprint = ? AND name = ?",
                (fingerprint, metric)).fetchone()
            if row is not None:
                group["sums"][metric][0] += row[0]
                group["sums"][metric][1] += 1
    if not groups:
        print("no matching runs", file=sys.stderr)
        return 1
    header = ["config".ljust(44), "seeds", "failed"]
    header += [short.rjust(10) for _, short in CAMPAIGN_MEANS]
    print("  ".join(header))
    for label in sorted(groups):
        group = groups[label]
        cells = [label[:44].ljust(44), "%5d" % group["seeds"],
                 "%6d" % group["failed"]]
        for metric, _ in CAMPAIGN_MEANS:
            total, count = group["sums"][metric]
            cells.append(
                ("%.4g" % (total / count)).rjust(10) if count else
                "-".rjust(10))
        print("  ".join(cells))
    return 0


def cmd_sql(args):
    db = open_store(args)
    db.execute("PRAGMA query_only = ON")
    try:
        cursor = db.execute(args.statement)
    except sqlite3.Error as exc:
        print("sql error: %s" % exc, file=sys.stderr)
        return 1
    if cursor.description is None:
        print("(no rows)")
        return 0
    print_rows(cursor)
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="ecgrid_query.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--db", required=True, help="SQLite store path")

    p = sub.add_parser("ingest", help="ingest campaign JSONL / bench JSON")
    common(p)
    p.add_argument("paths", nargs="+")
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("tables", help="row counts per table")
    common(p)
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("slo", help="SLO-percentage series points")
    common(p)
    p.add_argument("--figure")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser("energy", help="energy (aen_joules) series points")
    common(p)
    p.add_argument("--figure")
    p.set_defaults(func=cmd_energy)

    p = sub.add_parser("top", help="top-N scenarios by a metric")
    common(p)
    p.add_argument("--metric", required=True)
    p.add_argument("--figure")
    p.add_argument("-n", type=int, default=10)
    p.add_argument("--asc", action="store_true")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("campaign", help="per-config campaign aggregates")
    common(p)
    p.add_argument("--campaign")
    p.add_argument("--where", action="append", metavar="KEY=VALUE")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("sql", help="raw read-only SQL")
    common(p)
    p.add_argument("statement")
    p.set_defaults(func=cmd_sql)

    args = parser.parse_args(argv[1:])
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. `... | head`
        sys.exit(0)
