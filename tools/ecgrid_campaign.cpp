// ecgrid-campaign — expand a declarative sweep spec into scenario runs,
// execute them with failure collection, and stream JSONL results.
//
//   ecgrid-campaign --spec=sweep.json --results=out.jsonl --jobs=8
//
// The results file is the campaign's durable state: every completed
// scenario is one flushed line, and re-running the same command skips
// every (config, seed) fingerprint already present — kill it at any
// point and restart to continue (src/campaign/campaign_runner.hpp).
//
// --workers=N forks N copies of this binary, each owning the stripe of
// runs with index % N == i and appending to its own `<results>.w<i>`
// file; the parent merges worker files back into `<results>` when all
// children exit. Leftover worker files from a killed previous run are
// merged *before* forking, so no completed run is ever lost or repeated.
//
// Flags:
//   --spec=FILE        sweep spec JSON (or first positional argument)
//   --results=FILE     JSONL output, appended (default: <spec>.jsonl)
//   --jobs=N           scenario threads per process (default 1)
//   --workers=N        worker processes (default 1 = in-process only)
//   --max-runs=N       stop after N scenarios (testing: simulated kill)
//   --resume-from=F    extra JSONL file(s) for the resume scan
//                      (comma-separated; may repeat via commas)
//   --status-file=F    live JSON status heartbeat, rewritten atomically
//                      per batch: counts, in-flight fingerprints, wall
//                      percentiles, ETA, stragglers. With --workers=N
//                      each worker writes `F.w<i>` and the parent polls
//                      and aggregates them into F.
//   --straggler-factor=K  flag completed runs at >= K x median wall time
//                      (default 4)
//   --dry-run          print the expansion summary and exit
//   --quiet            suppress per-batch progress lines

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign_runner.hpp"
#include "campaign/sweep_spec.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using ecgrid::campaign::CampaignOptions;
using ecgrid::campaign::CampaignOutcome;
using ecgrid::campaign::CampaignSpec;

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot read spec file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> splitCommas(const std::string& list) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(list);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Append every line of `workerPath` to `mainPath` and remove the worker
/// file. Missing worker files are fine (worker never started).
void mergeWorkerFile(const std::string& mainPath,
                     const std::string& workerPath) {
  std::ifstream in(workerPath);
  if (!in) return;
  std::ofstream out(mainPath, std::ios::app);
  if (!out) {
    throw std::runtime_error("cannot append to results file '" + mainPath +
                             "'");
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out << line << '\n';
  }
  out.flush();
  in.close();
  if (std::remove(workerPath.c_str()) != 0) {
    throw std::runtime_error("cannot remove merged worker file '" +
                             workerPath + "'");
  }
}

std::string workerResultsPath(const std::string& resultsPath, int worker) {
  return resultsPath + ".w" + std::to_string(worker);
}

std::string workerStatusPath(const std::string& statusPath, int worker) {
  return statusPath + ".w" + std::to_string(worker);
}

/// Fold the per-worker status heartbeats into one fleet-level status
/// file: summed counts, concatenated in-flight/straggler lists, the max
/// worker ETA (workers run in parallel), and the raw per-worker objects
/// for drill-down. Best-effort: a worker that has not written yet simply
/// contributes nothing, and a torn read is skipped (workers write via
/// rename, so that only happens for exotic filesystems).
void aggregateWorkerStatus(const std::string& statusPath, int workers,
                           const std::string& campaignName) {
  ecgrid::util::JsonObject fleet;
  double totalRuns = 0.0;
  double stripeRuns = 0.0;
  double skipped = 0.0;
  double executed = 0.0;
  double failed = 0.0;
  double remaining = 0.0;
  double etaMax = 0.0;
  int reporting = 0;
  int done = 0;
  ecgrid::util::JsonArray inFlight;
  ecgrid::util::JsonArray stragglers;
  ecgrid::util::JsonArray perWorker;
  for (int w = 0; w < workers; ++w) {
    std::ifstream in(workerStatusPath(statusPath, w));
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ecgrid::util::JsonValue status;
    try {
      status = ecgrid::util::parseJson(buffer.str());
    } catch (const std::invalid_argument&) {
      continue;
    }
    ++reporting;
    const auto number = [&status](const char* key) {
      const ecgrid::util::JsonValue* value = status.find(key);
      return value != nullptr && value->kind() == ecgrid::util::JsonKind::kNumber
                 ? value->asNumber()
                 : 0.0;
    };
    // total_runs is the full expansion, identical in every worker.
    totalRuns = number("total_runs");
    stripeRuns += number("stripe_runs");
    skipped += number("skipped");
    executed += number("executed");
    failed += number("failed");
    remaining += number("remaining");
    etaMax = std::max(etaMax, number("eta_seconds"));
    if (const auto* flag = status.find("done");
        flag != nullptr && flag->kind() == ecgrid::util::JsonKind::kBool &&
        flag->asBool()) {
      ++done;
    }
    if (const auto* list = status.find("in_flight");
        list != nullptr && list->kind() == ecgrid::util::JsonKind::kArray) {
      for (const auto& item : list->asArray()) inFlight.push_back(item);
    }
    if (const auto* list = status.find("stragglers");
        list != nullptr && list->kind() == ecgrid::util::JsonKind::kArray) {
      for (const auto& item : list->asArray()) stragglers.push_back(item);
    }
    perWorker.push_back(status);
  }
  fleet["campaign"] = campaignName;
  fleet["worker_count"] = static_cast<double>(workers);
  fleet["workers_reporting"] = static_cast<double>(reporting);
  fleet["total_runs"] = totalRuns;
  fleet["stripe_runs"] = stripeRuns;
  fleet["skipped"] = skipped;
  fleet["executed"] = executed;
  fleet["failed"] = failed;
  fleet["remaining"] = remaining;
  fleet["eta_seconds"] = etaMax;
  fleet["in_flight"] = ecgrid::util::JsonValue(std::move(inFlight));
  fleet["stragglers"] = ecgrid::util::JsonValue(std::move(stragglers));
  fleet["per_worker"] = ecgrid::util::JsonValue(std::move(perWorker));
  fleet["done"] = reporting == workers && done == workers;

  const std::string tmpPath = statusPath + ".tmp";
  {
    std::ofstream out(tmpPath, std::ios::trunc);
    if (!out) return;
    out << ecgrid::util::JsonValue(std::move(fleet)).dump() << '\n';
  }
  std::rename(tmpPath.c_str(), statusPath.c_str());
}

/// Fork+exec one copy of this binary per worker, each striping the
/// expansion and appending to its own file; merge when all exit. With a
/// status path, the parent polls the per-worker heartbeats while waiting
/// and keeps the aggregated fleet status fresh.
int runMultiProcess(const std::string& self, const std::string& specPath,
                    const std::string& resultsPath, int workers, int jobs,
                    long maxRuns, bool quiet, const std::string& statusPath,
                    const std::string& stragglerFactor,
                    const std::string& campaignName) {
  // Recover any previous interrupted multi-process run first, so the
  // children's resume scan only needs the main file.
  for (int w = 0; w < workers; ++w) {
    mergeWorkerFile(resultsPath, workerResultsPath(resultsPath, w));
  }

  std::vector<pid_t> children;
  for (int w = 0; w < workers; ++w) {
    std::vector<std::string> args = {
        self,
        "--spec=" + specPath,
        "--results=" + workerResultsPath(resultsPath, w),
        "--resume-from=" + resultsPath,
        "--worker-index=" + std::to_string(w),
        "--worker-count=" + std::to_string(workers),
        "--jobs=" + std::to_string(jobs),
    };
    if (maxRuns >= 0) args.push_back("--max-runs=" + std::to_string(maxRuns));
    if (quiet) args.push_back("--quiet");
    if (!statusPath.empty()) {
      args.push_back("--status-file=" + workerStatusPath(statusPath, w));
      args.push_back("--straggler-factor=" + stragglerFactor);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("ecgrid-campaign: fork");
      return 1;
    }
    if (pid == 0) {
      execv(self.c_str(), argv.data());
      std::perror("ecgrid-campaign: execv");
      _exit(127);
    }
    children.push_back(pid);
  }

  int exitCode = 0;
  if (statusPath.empty()) {
    for (pid_t pid : children) {
      int status = 0;
      if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
          WEXITSTATUS(status) != 0) {
        exitCode = 1;
      }
    }
  } else {
    // Non-blocking wait loop so the fleet status stays fresh while
    // workers run: re-aggregate every ~200 ms.
    std::vector<bool> exited(children.size(), false);
    std::size_t running = children.size();
    while (running > 0) {
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (exited[i]) continue;
        int status = 0;
        const pid_t done = waitpid(children[i], &status, WNOHANG);
        if (done == 0) continue;
        exited[i] = true;
        --running;
        if (done < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          exitCode = 1;
        }
      }
      aggregateWorkerStatus(statusPath, workers, campaignName);
      if (running > 0) usleep(200 * 1000);
    }
    aggregateWorkerStatus(statusPath, workers, campaignName);
  }
  // Merge whatever the workers produced — even on a failed worker the
  // completed lines are durable progress the next invocation resumes on.
  for (int w = 0; w < workers; ++w) {
    mergeWorkerFile(resultsPath, workerResultsPath(resultsPath, w));
  }
  return exitCode;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ecgrid::util::Flags flags(
        argc, argv,
        {"spec", "results", "jobs", "workers", "worker-index", "worker-count",
         "max-runs", "resume-from", "status-file", "straggler-factor",
         "dry-run", "quiet"});

    std::string specPath = flags.getString("spec", "");
    if (specPath.empty() && !flags.positional().empty()) {
      specPath = flags.positional().front();
    }
    if (specPath.empty()) {
      std::cerr << "usage: ecgrid-campaign --spec=sweep.json "
                   "--results=out.jsonl [--jobs=N] [--workers=N]\n";
      return 2;
    }
    std::string defaultResults = specPath;
    if (defaultResults.size() > 5 &&
        defaultResults.compare(defaultResults.size() - 5, 5, ".json") == 0) {
      defaultResults.resize(defaultResults.size() - 5);
    }
    const std::string resultsPath =
        flags.getString("results", defaultResults + ".jsonl");
    const int jobs = flags.getInt("jobs", 1);
    const int workers = flags.getInt("workers", 1);
    const long maxRuns = flags.getInt("max-runs", -1);
    const bool quiet = flags.getBool("quiet", false);
    const std::string statusPath = flags.getString("status-file", "");
    const double stragglerFactor = flags.getDouble("straggler-factor", 4.0);

    const CampaignSpec spec =
        ecgrid::campaign::parseCampaignSpec(readFile(specPath));

    if (flags.getBool("dry-run", false)) {
      std::cout << "campaign " << spec.name << ": " << spec.runCount()
                << " runs (" << spec.axes.size() << " axes, "
                << spec.seeds.size() << " seeds)\n";
      return 0;
    }

    if (workers > 1) {
      return runMultiProcess(argv[0], specPath, resultsPath, workers, jobs,
                             maxRuns, quiet, statusPath,
                             std::to_string(stragglerFactor), spec.name);
    }

    CampaignOptions options;
    options.resultsPath = resultsPath;
    options.resumeFrom = splitCommas(flags.getString("resume-from", ""));
    options.jobs = static_cast<unsigned>(jobs < 1 ? 1 : jobs);
    options.workerIndex = flags.getInt("worker-index", 0);
    options.workerCount = flags.getInt("worker-count", 1);
    options.maxRuns = maxRuns;
    options.statusPath = statusPath;
    options.stragglerFactor = stragglerFactor;
    if (!quiet) {
      options.progress = [](const std::string& line) {
        std::cerr << line << '\n';
      };
    }

    const CampaignOutcome outcome =
        ecgrid::campaign::runCampaign(spec, options);
    if (!quiet) {
      std::cerr << "campaign " << spec.name << " done: " << outcome.executed
                << " executed, " << outcome.skipped << " resumed, "
                << outcome.failed << " failed (stripe "
                << outcome.stripeRuns << " of " << outcome.totalRuns
                << " total)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ecgrid-campaign: " << e.what() << '\n';
    return 1;
  }
}
