#!/usr/bin/env python3
"""Validate ecgrid trace artifacts.

Auto-detects and checks the four trace formats the simulator and its
tooling produce:

  * ecgrid-events    — protocol event JSONL from obs::EventTracer
                       (header {"schema":"ecgrid-events","version":1,...})
  * ecgrid-state     — periodic network-state JSONL from
                       stats::TraceRecorder
                       (header {"schema":"ecgrid-state","version":2,...})
  * ecgrid-telemetry — run-health samples from obs::RunTelemetry
                       (header {"schema":"ecgrid-telemetry","version":1,
                       ...}); checked for required keys, monotone wall_s
                       and sim_t, monotone event counts, and exactly one
                       final {"kind":"summary"} record after the samples.
  * chrome-trace     — {"traceEvents":[...]} JSON from tools/trace_chrome.py

Checks applied to every format: each record parses as JSON, required keys
are present, and timestamps never decrease. Event traces additionally get
span-pairing checks: every "e" must close an open (cat, id) span ("b"
without "e" is legal — an open span at end-of-sim is a signal, e.g. a
page that never woke its target). State traces check per-record field
presence and that served_x/served_y appear only on gateway records.

Only the Python standard library is used. Exit 0 = valid; exit 1 prints
every violation (capped) to stderr.

Usage:
    tools/trace_check.py trace.jsonl [more files...]
"""

import json
import sys

MAX_REPORTED = 20

STATE_REQUIRED = (
    "t",
    "id",
    "x",
    "y",
    "alive",
    "crashed",
    "sleeping",
    "gateway",
    "cell_x",
    "cell_y",
    "battery",
    "gps_err",
)


TELEMETRY_REQUIRED = (
    "kind",
    "events",
    "sim_t",
    "wall_s",
    "queue_depth",
    "peak_queue_depth",
    "slab_slots",
    "alloc_phase",
    "alloc_count",
    "alloc_hot",
    "events_per_wall_s",
    "sim_per_wall",
)

TELEMETRY_SHARDED = ("shards", "shard_committed", "shard_imbalance",
                     "window_stalls", "cross_shard")


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []

    def error(self, where, message):
        if len(self.errors) < MAX_REPORTED:
            self.errors.append(f"{self.path}:{where}: {message}")
        else:
            self.errors.append(None)  # counted, not printed

    def report(self):
        printed = [e for e in self.errors if e is not None]
        for line in printed:
            print(line, file=sys.stderr)
        hidden = len(self.errors) - len(printed)
        if hidden > 0:
            print(f"{self.path}: ... and {hidden} more", file=sys.stderr)
        return len(self.errors)


def check_events(checker, records):
    """ecgrid-events JSONL: schema, monotone time, span pairing."""
    last_t = None
    open_spans = {}  # (cat, id) -> begin lineno
    for lineno, record in records:
        for key in ("t", "cat", "ev", "ph"):
            if key not in record:
                checker.error(lineno, f"missing required key '{key}'")
                break
        else:
            t = record["t"]
            if not isinstance(t, (int, float)):
                checker.error(lineno, "t is not a number")
                continue
            if last_t is not None and t < last_t:
                checker.error(lineno, f"time went backwards ({t} < {last_t})")
            last_t = t
            phase = record["ph"]
            if phase == "b":
                if "id" not in record:
                    checker.error(lineno, "span begin without an id")
                    continue
                key = (record["cat"], record["id"])
                if key in open_spans:
                    checker.error(
                        lineno,
                        f"span {key} reopened "
                        f"(begun at line {open_spans[key]})",
                    )
                open_spans[key] = lineno
            elif phase == "e":
                if "id" not in record:
                    checker.error(lineno, "span end without an id")
                    continue
                key = (record["cat"], record["id"])
                if key not in open_spans:
                    checker.error(lineno, f"span end {key} with no open begin")
                else:
                    del open_spans[key]
            elif phase != "i":
                checker.error(lineno, f"unknown phase '{phase}'")
    # Open spans at EOF are legal (a page that never woke its target, an
    # election cut short by death) — report as info only, never an error.
    return len(open_spans)


def check_state(checker, records, version):
    """ecgrid-state JSONL: per-host record fields, monotone sample time."""
    last_t = None
    for lineno, record in records:
        missing = [key for key in STATE_REQUIRED if key not in record]
        if missing:
            checker.error(lineno, f"missing keys: {', '.join(missing)}")
            continue
        t = record["t"]
        if last_t is not None and t < last_t:
            checker.error(lineno, f"time went backwards ({t} < {last_t})")
        last_t = t
        has_served = "served_x" in record or "served_y" in record
        if has_served and version < 2:
            checker.error(lineno, "served_x/served_y in a pre-v2 trace")
        if has_served and not record["gateway"]:
            checker.error(lineno, "served grid on a non-gateway record")
        if has_served and ("served_x" not in record or "served_y" not in record):
            checker.error(lineno, "served_x/served_y must appear together")


def check_telemetry(checker, records):
    """ecgrid-telemetry JSONL: monotone health samples + one summary."""
    last = {"events": None, "sim_t": None, "wall_s": None, "seq": 0}
    samples = 0
    summary_line = None
    for lineno, record in records:
        kind = record.get("kind")
        if summary_line is not None:
            checker.error(
                lineno, f"record after summary (line {summary_line})"
            )
            continue
        if kind not in ("sample", "summary"):
            checker.error(lineno, f"unknown kind {kind!r}")
            continue
        missing = [k for k in TELEMETRY_REQUIRED if k not in record]
        if missing:
            checker.error(lineno, f"missing keys: {', '.join(missing)}")
            continue
        for key in ("events", "sim_t", "wall_s"):
            value = record[key]
            if not isinstance(value, (int, float)):
                checker.error(lineno, f"{key} is not a number")
                break
            if last[key] is not None and value < last[key]:
                checker.error(
                    lineno,
                    f"{key} went backwards ({value} < {last[key]})",
                )
            last[key] = value
        sharded = [k for k in TELEMETRY_SHARDED if k in record]
        if sharded and len(sharded) != len(TELEMETRY_SHARDED):
            absent = sorted(set(TELEMETRY_SHARDED) - set(sharded))
            checker.error(
                lineno, f"partial sharded fields (missing {absent})"
            )
        elif sharded:
            committed = record["shard_committed"]
            if (
                not isinstance(committed, list)
                or len(committed) != record["shards"]
            ):
                checker.error(
                    lineno,
                    "shard_committed length != shards "
                    f"({committed!r} vs {record['shards']})",
                )
        if kind == "sample":
            samples += 1
            if record.get("seq") != samples:
                checker.error(
                    lineno,
                    f"sample seq {record.get('seq')} != expected {samples}",
                )
        else:
            summary_line = lineno
            if record.get("samples") != samples:
                checker.error(
                    lineno,
                    f"summary says {record.get('samples')} samples, "
                    f"counted {samples}",
                )
    if summary_line is None:
        checker.error("eof", "no summary record (run did not finish?)")
    return samples


def check_chrome(checker, trace):
    """Chrome trace-event JSON: the subset trace_chrome.py emits."""
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        checker.error(0, "traceEvents missing or not a list")
        return
    open_spans = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        for key in ("name", "ph", "pid"):
            if key not in event:
                checker.error(where, f"missing key '{key}'")
                break
        else:
            phase = event["ph"]
            if phase == "M":
                continue
            if "ts" not in event:
                checker.error(where, "missing key 'ts'")
                continue
            if phase in ("b", "e"):
                if "id" not in event:
                    checker.error(where, f"async '{phase}' without an id")
                    continue
                key = (event.get("cat"), event["id"])
                if phase == "b":
                    open_spans[key] = index
                elif key not in open_spans:
                    checker.error(where, f"span end {key} with no open begin")
                else:
                    del open_spans[key]
            elif phase == "i":
                if event.get("s") not in ("t", "p", "g"):
                    checker.error(where, "instant without a valid scope 's'")
            else:
                checker.error(where, f"unexpected phase '{phase}'")


def check_file(path):
    checker = Checker(path)
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline().strip()
        if not first:
            checker.error(1, "empty file")
            return checker, "empty", 0
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            checker.error(1, f"invalid JSON: {exc}")
            return checker, "unparseable", 0

        if isinstance(header, dict) and "traceEvents" in header:
            # Whole-file JSON (possibly single-line); re-read everything.
            handle.seek(0)
            try:
                trace = json.load(handle)
            except json.JSONDecodeError as exc:
                checker.error(1, f"invalid JSON: {exc}")
                return checker, "chrome-trace", 0
            check_chrome(checker, trace)
            return checker, "chrome-trace", len(trace.get("traceEvents", []))

        schema = header.get("schema") if isinstance(header, dict) else None
        if schema not in ("ecgrid-events", "ecgrid-state",
                          "ecgrid-telemetry"):
            checker.error(1, f"unknown schema {schema!r}")
            return checker, "unknown", 0

        def parsed_lines():
            for lineno, raw in enumerate(handle, start=2):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    yield lineno, json.loads(raw)
                except json.JSONDecodeError as exc:
                    checker.error(lineno, f"invalid JSON: {exc}")

        count = 0

        def counted():
            nonlocal count
            for item in parsed_lines():
                count += 1
                yield item

        if schema == "ecgrid-events":
            open_count = check_events(checker, counted())
            label = f"ecgrid-events v{header.get('version')}"
            if open_count:
                label += f" ({open_count} span(s) left open)"
            return checker, label, count
        if schema == "ecgrid-telemetry":
            samples = check_telemetry(checker, counted())
            label = (
                f"ecgrid-telemetry v{header.get('version')} "
                f"({samples} sample(s))"
            )
            return checker, label, count
        check_state(checker, counted(), header.get("version", 1))
        return checker, f"ecgrid-state v{header.get('version')}", count


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        checker, kind, records = check_file(path)
        errors = checker.report()
        status = "OK" if errors == 0 else f"{errors} error(s)"
        print(f"{path}: {kind}, {records} record(s): {status}")
        failures += errors
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
