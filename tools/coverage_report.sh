#!/usr/bin/env bash
# Build the coverage preset, run the test suite, and emit a line-coverage
# summary for src/, enforcing a floor.
#
# Usage:
#   tools/coverage_report.sh [build-dir]
#
#   build-dir  coverage build tree (default: build-coverage; configured
#              with the `coverage` preset when missing)
#
# Environment:
#   ECGRID_COVERAGE_MIN   line-coverage floor on src/ in percent
#                         (default: 90; the suite currently measures ~95,
#                         so the floor trips on real coverage regressions
#                         without blocking routine churn)
#   ECGRID_COVERAGE_OUT   where to write the summary (default:
#                         <build-dir>/coverage-summary.txt)
#   ECGRID_COVERAGE_SKIP_TESTS  set to reuse existing .gcda counters
#                         instead of re-running ctest
#
# Prefers gcovr when installed (CI installs it); otherwise falls back to
# tools/gcov_summary.py, a stdlib-only parser of `gcov --json-format`
# output, so gcc-only containers still get the same summary and floor.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-coverage}"
floor="${ECGRID_COVERAGE_MIN:-90}"
out="${ECGRID_COVERAGE_OUT:-${build_dir}/coverage-summary.txt}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
  echo "coverage_report: configuring coverage preset…" >&2
  cmake --preset coverage > /dev/null
fi
cmake --build "${build_dir}" -j "$(nproc)"

if [ -z "${ECGRID_COVERAGE_SKIP_TESTS:-}" ]; then
  # Stale counters from a previous run would inflate the numbers.
  find "${build_dir}" -name '*.gcda' -delete
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
fi

mkdir -p "$(dirname "${out}")"

if command -v gcovr > /dev/null 2>&1; then
  echo "coverage_report: using gcovr, floor ${floor}% on src/" >&2
  gcovr --root "${repo_root}" \
        --filter "${repo_root}/src/" \
        --object-directory "${build_dir}" \
        --print-summary \
        --txt "${out}" \
        --fail-under-line "${floor}"
  cat "${out}"
else
  echo "coverage_report: gcovr not found; using gcov fallback" >&2
  python3 "${repo_root}/tools/gcov_summary.py" \
          --build-dir "${build_dir}" \
          --root "${repo_root}" \
          --filter src/ \
          --fail-under-line "${floor}" \
          --output "${out}"
fi
